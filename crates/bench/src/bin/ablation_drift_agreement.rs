//! Ablation E5: how closely do the two Task-2 strategies agree?
//!
//! The paper's §V-B headline finding is that μ/σ-Change and KSWIN yield
//! "almost identical results" when monitoring a training set, which —
//! combined with Table II's cost gap — motivates the cheaper strategy.
//! This ablation runs both detectors over identical streams (same model,
//! same Task-1 strategy, same data) and reports their trigger times and
//! the resulting detection-metric deltas.
//!
//! ```sh
//! cargo run --release -p sad-bench --bin ablation_drift_agreement
//! cargo run --release -p sad-bench --bin ablation_drift_agreement -- --jobs 4
//! cargo run --release -p sad-bench --bin ablation_drift_agreement -- --serial
//! ```
//!
//! Each (corpus, μ/σ-spec) pair is one job on the shared
//! [`sad_bench::JobPool`]: it evaluates the spec *and* its KSWIN sibling
//! as ONE shared-prefix tree root ([`sad_bench::evaluate_tree`]) — the
//! warm-up + initial fit is streamed once and forked per drift variant,
//! which is exactly the comparison this ablation makes: both detectors
//! see the identical post-warm-up model and training set by construction.
//! The pairwise delta stays a pure function of the job index and output
//! is byte-identical at any `--jobs` value.

use sad_bench::{evaluate_tree, harness_params, HarnessArgs, HarnessScale, Table};
use sad_core::{paper_algorithms, AlgorithmSpec, ModelKind, ScoreKind, Task1, Task2};
use sad_data::{daphnet_like, exathlon_like, smd_like, CorpusParams};
use sad_models::{build_scorer, build_shared_warmup};

/// Both drift variants, μ/σ first — the fork order used throughout.
const VARIANTS: [Task2; 2] = [Task2::MuSigma, Task2::Kswin];

fn main() {
    let args = HarnessArgs::from_env();
    let cp = CorpusParams { length: 1600, n_series: 1, anomalies_per_series: 3, with_drift: true };
    let corpora = vec![daphnet_like(21, cp), exathlon_like(21, cp), smd_like(21, cp)];

    // Trigger-time comparison on one representative pipeline per corpus:
    // one shared warm-up + AE fit, forked into the μ/σ and KSWIN arms.
    println!("drift trigger times (2-layer AE / SW), first 6 per detector:\n");
    for corpus in &corpora {
        let series = &corpus.series[0];
        let params = harness_params(series.channels(), HarnessScale::Quick);
        let mut shared =
            build_shared_warmup(ModelKind::TwoLayerAe, Task1::SlidingWindow, &VARIANTS, &params);
        let warm = params.config.warmup.min(series.data.len());
        for s in &series.data[..warm] {
            shared.step(s);
        }
        let mut det_ms = shared.fork(0, build_scorer(params.score, &params));
        let mut det_ks = shared.fork(1, build_scorer(params.score, &params));
        det_ms.run(&series.data[warm..]);
        det_ks.run(&series.data[warm..]);
        let take = |v: &[usize]| v.iter().take(6).copied().collect::<Vec<_>>();
        println!("{:<14} μ/σ: {:?}", corpus.name, take(det_ms.drift_times()));
        println!("{:<14} KS : {:?}", "", take(det_ks.drift_times()));
    }

    // Metric-level agreement across all models that support both strategies.
    let mu_sigma_specs: Vec<AlgorithmSpec> =
        paper_algorithms().into_iter().filter(|s| s.task2 == Task2::MuSigma).collect();
    let n_cells = corpora.len() * mu_sigma_specs.len();
    let report = args.pool().run(n_cells, |idx| {
        let si = idx % mu_sigma_specs.len();
        let ci = idx / mu_sigma_specs.len();
        let corpus = &corpora[ci];
        let params = harness_params(corpus.series[0].channels(), HarnessScale::Quick);
        let spec = mu_sigma_specs[si];
        let tree = evaluate_tree(
            spec.model,
            spec.task1,
            &VARIANTS,
            &params,
            corpus,
            &[ScoreKind::AnomalyLikelihood],
        );
        let (a, b) = (tree.rows[0][0], tree.rows[1][0]);
        [
            (a.precision - b.precision).abs(),
            (a.recall - b.recall).abs(),
            (a.auc - b.auc).abs(),
            (a.vus - b.vus).abs(),
        ]
    });

    println!("\nmetric deltas |μ/σ − KS| averaged over the Table I grid:\n");
    let mut table = Table::new(&["Corpus", "|ΔPrec|", "|ΔRec|", "|ΔAUC|", "|ΔVUS|"]);
    for (ci, corpus) in corpora.iter().enumerate() {
        let mut deltas = [0.0f64; 4];
        for si in 0..mu_sigma_specs.len() {
            let cell = report.results[ci * mu_sigma_specs.len() + si];
            for (acc, d) in deltas.iter_mut().zip(cell) {
                *acc += d;
            }
        }
        let n = mu_sigma_specs.len() as f64;
        table.row(vec![
            corpus.name.clone(),
            format!("{:.3}", deltas[0] / n),
            format!("{:.3}", deltas[1] / n),
            format!("{:.3}", deltas[2] / n),
            format!("{:.3}", deltas[3] / n),
        ]);
    }
    println!("{}", table.render());
    println!("small deltas reproduce the paper's \"almost identical results\" finding,");
    println!("which (with Table II) motivates the cheaper μ/σ-Change strategy.");
    eprintln!(
        "wall {:.2}s, cpu {:.2}s, {} jobs",
        report.wall_time.as_secs_f64(),
        report.cpu_time().as_secs_f64(),
        report.jobs_used,
    );
}
