//! Ablation E5: how closely do the two Task-2 strategies agree?
//!
//! The paper's §V-B headline finding is that μ/σ-Change and KSWIN yield
//! "almost identical results" when monitoring a training set, which —
//! combined with Table II's cost gap — motivates the cheaper strategy.
//! This ablation runs both detectors over identical streams (same model,
//! same Task-1 strategy, same data) and reports their trigger times and
//! the resulting detection-metric deltas.
//!
//! ```sh
//! cargo run --release -p sad-bench --bin ablation_drift_agreement
//! ```

use sad_bench::{evaluate_spec, harness_params, HarnessScale, Table};
use sad_core::{paper_algorithms, ModelKind, ScoreKind, Task1, Task2};
use sad_data::{daphnet_like, exathlon_like, smd_like, CorpusParams};
use sad_models::build_detector;

fn main() {
    let cp = CorpusParams { length: 1600, n_series: 1, anomalies_per_series: 3, with_drift: true };
    let corpora = vec![daphnet_like(21, cp), exathlon_like(21, cp), smd_like(21, cp)];

    // Trigger-time comparison on one representative pipeline per corpus.
    println!("drift trigger times (2-layer AE / SW), first 6 per detector:\n");
    for corpus in &corpora {
        let series = &corpus.series[0];
        let params = harness_params(series.channels(), HarnessScale::Quick);
        let spec_ms = paper_algorithms()
            .into_iter()
            .find(|s| {
                s.model == ModelKind::TwoLayerAe
                    && s.task1 == Task1::SlidingWindow
                    && s.task2 == Task2::MuSigma
            })
            .unwrap();
        let spec_ks = sad_core::AlgorithmSpec { task2: Task2::Kswin, ..spec_ms };
        let mut det_ms = build_detector(spec_ms, &params);
        let mut det_ks = build_detector(spec_ks, &params);
        det_ms.run(&series.data);
        det_ks.run(&series.data);
        let take = |v: &[usize]| v.iter().take(6).copied().collect::<Vec<_>>();
        println!("{:<14} μ/σ: {:?}", corpus.name, take(det_ms.drift_times()));
        println!("{:<14} KS : {:?}", "", take(det_ks.drift_times()));
    }

    // Metric-level agreement across all models that support both strategies.
    println!("\nmetric deltas |μ/σ − KS| averaged over the Table I grid:\n");
    let mut table = Table::new(&["Corpus", "|ΔPrec|", "|ΔRec|", "|ΔAUC|", "|ΔVUS|"]);
    for corpus in &corpora {
        let params = harness_params(corpus.series[0].channels(), HarnessScale::Quick);
        let mut deltas = [0.0f64; 4];
        let mut count = 0;
        for spec in paper_algorithms() {
            if spec.task2 != Task2::MuSigma {
                continue; // pair each μ/σ spec with its KS sibling
            }
            let sibling = sad_core::AlgorithmSpec { task2: Task2::Kswin, ..spec };
            let a = evaluate_spec(spec, &params, corpus, ScoreKind::AnomalyLikelihood);
            let b = evaluate_spec(sibling, &params, corpus, ScoreKind::AnomalyLikelihood);
            deltas[0] += (a.precision - b.precision).abs();
            deltas[1] += (a.recall - b.recall).abs();
            deltas[2] += (a.auc - b.auc).abs();
            deltas[3] += (a.vus - b.vus).abs();
            count += 1;
        }
        let n = count as f64;
        table.row(vec![
            corpus.name.clone(),
            format!("{:.3}", deltas[0] / n),
            format!("{:.3}", deltas[1] / n),
            format!("{:.3}", deltas[2] / n),
            format!("{:.3}", deltas[3] / n),
        ]);
    }
    println!("{}", table.render());
    println!("small deltas reproduce the paper's \"almost identical results\" finding,");
    println!("which (with Table II) motivates the cheaper μ/σ-Change strategy.");
}
