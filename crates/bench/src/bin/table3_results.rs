//! Regenerates the paper's **Table III**: experimental results of all 26
//! algorithms on the three corpora (Prec / Rec / AUC / VUS / NAB), plus the
//! final three rows comparing the Raw / Average / Anomaly-Likelihood
//! anomaly scores averaged over all algorithms.
//!
//! Per the paper's protocol, the headline rows average each algorithm's
//! metrics over the Average and Anomaly-Likelihood scorers (PCB-iForest:
//! AL only).
//!
//! ```sh
//! cargo run --release -p sad-bench --bin table3_results            # quick profile
//! cargo run --release -p sad-bench --bin table3_results -- --full  # paper-shaped profile
//! ```
//!
//! The quick profile shortens the series and strides the KSWIN test; the
//! full profile uses w = 100 and a 5000-step warm-up as in the paper (slow:
//! expect roughly an hour).

use sad_bench::{evaluate_spec, harness_params, EvalRow, HarnessScale, Table};
use sad_core::{paper_algorithms, ScoreKind};
use sad_data::{daphnet_like, exathlon_like, smd_like, Corpus, CorpusParams};

fn corpus_params(scale: HarnessScale) -> CorpusParams {
    match scale {
        HarnessScale::Quick => CorpusParams {
            length: 1600,
            n_series: 1,
            anomalies_per_series: 4,
            with_drift: true,
        },
        HarnessScale::Full => CorpusParams::paper(),
    }
}

fn fmt_cells(row: &EvalRow) -> Vec<String> {
    vec![
        format!("{:.2}", row.precision),
        format!("{:.2}", row.recall),
        format!("{:.2}", row.auc),
        format!("{:.2}", row.vus),
        format!("{:.2}", row.nab),
    ]
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let scale = if full { HarnessScale::Full } else { HarnessScale::Quick };
    let cp = corpus_params(scale);
    let corpora: Vec<Corpus> = vec![daphnet_like(42, cp), exathlon_like(42, cp), smd_like(42, cp)];
    let specs = paper_algorithms();

    println!(
        "Table III: experimental results ({} profile, {} steps/series, {} series/corpus)\n",
        if full { "full/paper" } else { "quick" },
        cp.length,
        cp.n_series
    );

    let mut header = vec!["Model", "T1", "T2"];
    for c in &corpora {
        for m in ["Prec", "Rec", "AUC", "VUS", "NAB"] {
            header.push(Box::leak(format!("{}:{}", &c.name[..2], m).into_boxed_str()));
        }
    }
    let mut table = Table::new(&header.iter().map(|s| &**s).collect::<Vec<_>>());

    // Per-scorer accumulation for the final three comparison rows.
    let mut by_scorer: Vec<(ScoreKind, Vec<Vec<EvalRow>>)> = vec![
        (ScoreKind::Raw, vec![Vec::new(); corpora.len()]),
        (ScoreKind::Average, vec![Vec::new(); corpora.len()]),
        (ScoreKind::AnomalyLikelihood, vec![Vec::new(); corpora.len()]),
    ];

    for spec in &specs {
        let mut cells = vec![
            spec.model.label().to_string(),
            spec.task1.label().to_string(),
            spec.task2.label().to_string(),
        ];
        for (ci, corpus) in corpora.iter().enumerate() {
            let params = harness_params(corpus.series[0].channels(), scale);
            // One run per scorer serves both the headline cell (Table I
            // scorer average) and the scorer-comparison accumulation.
            let mut headline = Vec::new();
            for (kind, acc) in by_scorer.iter_mut() {
                let row = evaluate_spec(*spec, &params, corpus, *kind);
                if spec.scores().contains(kind) {
                    headline.push(row);
                }
                acc[ci].push(row);
            }
            cells.extend(fmt_cells(&EvalRow::mean(&headline)));
        }
        table.row(cells);
        eprintln!("done: {}", spec.label());
    }

    // Final rows: anomaly-score comparison averaged over all algorithms.
    for (kind, acc) in &by_scorer {
        let mut cells = vec![format!("Anomaly scores"), String::new(), kind.label().to_string()];
        for per_corpus in acc {
            let avg = EvalRow::mean(per_corpus);
            cells.extend(fmt_cells(&avg));
        }
        table.row(cells);
    }

    println!("{}", table.render());
    println!("columns per corpus: Prec, Rec, AUC (range PR), VUS (PR), NAB (point-wise).");
    println!("Shapes to compare with the paper: ARES ≥ SW/URES on AUC; μ/σ ≈ KS;");
    println!("online ARIMA below the non-linear models; AL > Avg > Raw on NAB;");
    println!("long-anomaly corpora (exathlon-like) produce deeply negative NAB rows.");
}
