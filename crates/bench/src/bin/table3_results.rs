//! Regenerates the paper's **Table III**: experimental results of all 26
//! algorithms on the three corpora (Prec / Rec / AUC / VUS / NAB), plus the
//! final three rows comparing the Raw / Average / Anomaly-Likelihood
//! anomaly scores averaged over all algorithms.
//!
//! Per the paper's protocol, the headline rows average each algorithm's
//! metrics over the Average and Anomaly-Likelihood scorers (PCB-iForest:
//! AL only).
//!
//! ```sh
//! cargo run --release -p sad-bench --bin table3_results             # quick profile
//! cargo run --release -p sad-bench --bin table3_results -- --full   # paper-shaped profile
//! cargo run --release -p sad-bench --bin table3_results -- --jobs 4 # explicit worker count
//! cargo run --release -p sad-bench --bin table3_results -- --serial # one worker
//! ```
//!
//! The grid is scheduled as 42 shared-prefix **roots** (one
//! `(model, Task1, corpus)` node per drift-variant pair, plus the two
//! PCB-iForest singletons — down from the previous 78 `(spec, corpus)`
//! groups) on a work-stealing job pool (default: all available cores;
//! `--serial` or `--jobs N` to override). Inside each root the warm-up +
//! initial fit is streamed once and forked per drift variant; inside each
//! fork the three scorers share a single detector pass per series (scorer
//! fan-out — anomaly-feedback strategies share the warm-up and fork per
//! scorer instead). Results are **deterministic and byte-identical at any
//! job count, and to the pre-tree per-group and pre-fan-out per-cell
//! grids** — every root seeds its own RNG chain and its rows land in
//! fixed cell slots. Per-root (and legacy per-group / per-cell) wall
//! times are written to `bench_output/table3_timing.json` as a
//! perf-regression artifact.
//!
//! The quick profile shortens the series and strides the KSWIN test; the
//! full profile uses w = 100 and a 5000-step warm-up as in the paper
//! (minutes on a multi-core machine instead of the previous ~hour serial).

use sad_bench::{
    cell_index, run_grid, CellTiming, EvalRow, GridDims, GroupTiming, HarnessArgs, HarnessScale,
    RootTiming, Table, TimingArtifact,
};
use sad_core::{paper_algorithms, ScoreKind};
use sad_data::{daphnet_like, exathlon_like, smd_like, Corpus, CorpusParams};

fn corpus_params(scale: HarnessScale) -> CorpusParams {
    match scale {
        HarnessScale::Quick => CorpusParams {
            length: 1600,
            n_series: 1,
            anomalies_per_series: 4,
            with_drift: true,
        },
        HarnessScale::Full => CorpusParams::paper(),
    }
}

fn fmt_cells(row: &EvalRow) -> Vec<String> {
    vec![
        format!("{:.2}", row.precision),
        format!("{:.2}", row.recall),
        format!("{:.2}", row.auc),
        format!("{:.2}", row.vus),
        format!("{:.2}", row.nab),
    ]
}

fn main() {
    let args = HarnessArgs::from_env();
    let scale = if args.full { HarnessScale::Full } else { HarnessScale::Quick };
    let cp = corpus_params(scale);
    let corpora: Vec<Corpus> = vec![daphnet_like(42, cp), exathlon_like(42, cp), smd_like(42, cp)];
    let specs = paper_algorithms();
    let scorers = [ScoreKind::Raw, ScoreKind::Average, ScoreKind::AnomalyLikelihood];

    // Worker count deliberately stays off stdout: the table must be
    // byte-identical at any `--jobs` value (telemetry goes to stderr).
    println!(
        "Table III: experimental results ({} profile, {} steps/series, {} series/corpus)\n",
        if args.full { "full/paper" } else { "quick" },
        cp.length,
        cp.n_series,
    );

    // Owned header — no per-cell leak; `Table::with_header` takes it whole.
    let mut header: Vec<String> = vec!["Model".into(), "T1".into(), "T2".into()];
    for c in &corpora {
        for m in ["Prec", "Rec", "AUC", "VUS", "NAB"] {
            header.push(format!("{}:{}", &c.name[..2], m));
        }
    }
    let mut table = Table::with_header(header);

    // All 234 cells in one parallel grid run.
    let grid = run_grid(&specs, &corpora, &scorers, scale, args.pool());
    let dims = GridDims { corpora: corpora.len(), scorers: scorers.len() };

    for (si, spec) in specs.iter().enumerate() {
        let mut cells = vec![
            spec.model.label().to_string(),
            spec.task1.label().to_string(),
            spec.task2.label().to_string(),
        ];
        for ci in 0..corpora.len() {
            // The headline cell averages the spec's Table I scorers.
            let headline: Vec<EvalRow> = scorers
                .iter()
                .enumerate()
                .filter(|(_, kind)| spec.scores().contains(kind))
                .map(|(ki, _)| grid.rows[cell_index(si, ci, ki, dims)])
                .collect();
            cells.extend(fmt_cells(&EvalRow::mean(&headline)));
        }
        table.row(cells);
    }

    // Final rows: anomaly-score comparison averaged over all algorithms.
    for (ki, kind) in scorers.iter().enumerate() {
        let mut cells =
            vec!["Anomaly scores".to_string(), String::new(), kind.label().to_string()];
        for ci in 0..corpora.len() {
            let per_corpus: Vec<EvalRow> =
                (0..specs.len()).map(|si| grid.rows[cell_index(si, ci, ki, dims)]).collect();
            cells.extend(fmt_cells(&EvalRow::mean(&per_corpus)));
        }
        table.row(cells);
    }

    println!("{}", table.render());
    println!("columns per corpus: Prec, Rec, AUC (range PR), VUS (PR), NAB (point-wise).");
    println!("Shapes to compare with the paper: ARES ≥ SW/URES on AUC; μ/σ ≈ KS;");
    println!("online ARIMA below the non-linear models; AL > Avg > Raw on NAB;");
    println!("long-anomaly corpora (exathlon-like) produce deeply negative NAB rows.");

    let artifact = TimingArtifact {
        harness: "table3_results".into(),
        profile: if args.full { "full" } else { "quick" }.into(),
        jobs: grid.jobs_used,
        wall_time: grid.wall_time,
        cpu_time: grid.cpu_time(),
        cells: grid
            .labels
            .iter()
            .zip(&grid.report_times)
            .zip(&grid.rows)
            .map(|((label, &wall), row)| CellTiming {
                label: label.clone(),
                wall,
                train_seconds: row.train_seconds,
            })
            .collect(),
        groups: grid
            .group_labels
            .iter()
            .zip(&grid.group_times)
            .zip(grid.group_shared.iter().zip(&grid.group_train_seconds))
            .map(|((label, &wall), (&shared_pass, &train_seconds))| GroupTiming {
                label: label.clone(),
                wall,
                train_seconds,
                shared_pass,
                scorers: scorers.len(),
            })
            .collect(),
        roots: grid
            .root_labels
            .iter()
            .zip(grid.root_times.iter().zip(&grid.root_train_seconds))
            .zip(grid.root_initial_fits.iter().zip(grid.root_shared.iter().zip(&grid.root_variants)))
            .map(|((label, (&wall, &train_seconds)), (&initial_fits, (&shared_pass, &variants)))| {
                RootTiming {
                    label: label.clone(),
                    wall,
                    train_seconds,
                    initial_fits,
                    shared_pass,
                    variants,
                    scorers: scorers.len(),
                }
            })
            .collect(),
    };
    match artifact.write("bench_output/table3_timing.json") {
        Ok(()) => eprintln!(
            "wall {:.2}s, cpu {:.2}s, {} jobs, {} roots, {} initial fits -> bench_output/table3_timing.json",
            grid.wall_time.as_secs_f64(),
            grid.cpu_time().as_secs_f64(),
            grid.jobs_used,
            grid.root_times.len(),
            grid.initial_fits(),
        ),
        Err(e) => eprintln!("warning: could not write timing artifact: {e}"),
    }
    // Same run, projected through the workspace telemetry substrate —
    // scrape-ready text exposition next to the JSON artifact. Announced on
    // stderr like the timing artifact: the table on stdout stays
    // byte-identical with telemetry compiled in.
    let mut prom = String::new();
    artifact.to_registry().render_prometheus(&mut prom);
    match std::fs::write("bench_output/table3_metrics.prom", &prom) {
        Ok(()) => eprintln!("grid metrics -> bench_output/table3_metrics.prom"),
        Err(e) => eprintln!("warning: could not write metrics artifact: {e}"),
    }
}
