//! Ablation E7: VAR vs online ARIMA.
//!
//! §IV-C describes the vector-autoregressive model as the extension of
//! online ARIMA that takes cross-channel correlations into account, but
//! leaves it out of the Table I evaluation grid (least squares requires
//! consecutive data, restricting Task 1 to the sliding window). This
//! ablation runs the comparison the paper motivates: ARIMA vs VAR, both
//! with SW + μ/σ, on a corpus with strong cross-channel correlation
//! (Daphnet-like gait — all axes share the gait frequency).
//!
//! ```sh
//! cargo run --release -p sad-bench --bin ablation_var
//! cargo run --release -p sad-bench --bin ablation_var -- --jobs 4
//! cargo run --release -p sad-bench --bin ablation_var -- --serial
//! ```
//!
//! The `corpus × model` cells run on the shared [`sad_bench::JobPool`];
//! output is byte-identical at any `--jobs` value.

use sad_bench::{harness_params, HarnessArgs, HarnessScale, Table};
use sad_core::{
    AnomalyLikelihood, Detector, ModelKind, MuSigmaChange, ScoreKind, SlidingWindowSet,
    StreamModel,
};
use sad_data::{daphnet_like, smd_like, Corpus, CorpusParams};
use sad_metrics::{best_f1, pr_auc};
use sad_models::{build_model, build_scorer_bank, VarModel};

fn evaluate(model: Box<dyn StreamModel>, corpus: &Corpus) -> (f64, f64) {
    let series = &corpus.series[0];
    let params = harness_params(series.channels(), HarnessScale::Quick);
    let mut det = Detector::new(
        params.config.clone(),
        model,
        Box::new(SlidingWindowSet::new(params.train_capacity)),
        Box::new(MuSigmaChange::new()),
        Box::new(AnomalyLikelihood::new(params.score_k, params.score_k_short)),
    );
    // SW is scorer-feedback-free, so the fan-out path with a single-AL
    // bank reproduces `score_series` with the AL scorer bitwise — this
    // binary rides the same shared-pass machinery as the Table III grid.
    debug_assert!(det.scorer_feedback_free());
    let mut bank = build_scorer_bank(&[ScoreKind::AnomalyLikelihood], &params);
    let run = det.run_fanout(&series.data, &mut bank);
    let scores = &run.traces[0];
    let labels = &series.labels[run.offset..];
    let (_th, _p, _r, f1) = best_f1(scores, labels, 40);
    (pr_auc(scores, labels, 40), f1)
}

const MODEL_NAMES: [&str; 2] = ["Online ARIMA", "VAR(3)"];

fn main() {
    let args = HarnessArgs::from_env();
    let cp = CorpusParams { length: 1600, n_series: 1, anomalies_per_series: 4, with_drift: true };
    let corpora = [daphnet_like(17, cp), smd_like(17, cp)];

    // One job per (corpus, model) cell — each builds its model inside the
    // job so the result is a pure function of the index.
    let n_cells = corpora.len() * MODEL_NAMES.len();
    let report = args.pool().run(n_cells, |idx| {
        let m = idx % MODEL_NAMES.len();
        let corpus = &corpora[idx / MODEL_NAMES.len()];
        let params = harness_params(corpus.series[0].channels(), HarnessScale::Quick);
        let model: Box<dyn StreamModel> = match m {
            0 => build_model(ModelKind::OnlineArima, &params),
            _ => Box::new(VarModel::new(3, 1e-6)),
        };
        evaluate(model, corpus)
    });

    let mut table = Table::new(&["Corpus", "Model", "AUC", "best F1"]);
    for (c, corpus) in corpora.iter().enumerate() {
        for (m, name) in MODEL_NAMES.iter().enumerate() {
            let (auc, f1) = report.results[c * MODEL_NAMES.len() + m];
            table.row(vec![
                corpus.name.clone(),
                name.to_string(),
                format!("{auc:.3}"),
                format!("{f1:.3}"),
            ]);
        }
    }
    println!("VAR vs online ARIMA (both SW + μ/σ + anomaly likelihood)\n");
    println!("{}", table.render());
    println!("VAR models cross-channel correlation that the channel-shared online");
    println!("ARIMA ignores (§IV-C); the gait corpus correlates all 9 axes.");
    eprintln!(
        "wall {:.2}s, cpu {:.2}s, {} jobs",
        report.wall_time.as_secs_f64(),
        report.cpu_time().as_secs_f64(),
        report.jobs_used,
    );
}
