//! Ablation E7: VAR vs online ARIMA.
//!
//! §IV-C describes the vector-autoregressive model as the extension of
//! online ARIMA that takes cross-channel correlations into account, but
//! leaves it out of the Table I evaluation grid (least squares requires
//! consecutive data, restricting Task 1 to the sliding window). This
//! ablation runs the comparison the paper motivates: ARIMA vs VAR, both
//! with SW + μ/σ, on a corpus with strong cross-channel correlation
//! (Daphnet-like gait — all axes share the gait frequency).

use sad_bench::{harness_params, HarnessScale, Table};
use sad_core::{
    AnomalyLikelihood, Detector, ModelKind, MuSigmaChange, SlidingWindowSet, StreamModel,
};
use sad_data::{daphnet_like, smd_like, Corpus, CorpusParams};
use sad_metrics::{best_f1, pr_auc};
use sad_models::{build_model, VarModel};

fn evaluate(model: Box<dyn StreamModel>, corpus: &Corpus) -> (f64, f64) {
    let series = &corpus.series[0];
    let params = harness_params(series.channels(), HarnessScale::Quick);
    let mut det = Detector::new(
        params.config.clone(),
        model,
        Box::new(SlidingWindowSet::new(params.train_capacity)),
        Box::new(MuSigmaChange::new()),
        Box::new(AnomalyLikelihood::new(params.score_k, params.score_k_short)),
    );
    let (scores, offset) = det.score_series(&series.data);
    let labels = &series.labels[offset..];
    let (_th, _p, _r, f1) = best_f1(&scores, labels, 40);
    (pr_auc(&scores, labels, 40), f1)
}

fn main() {
    let cp = CorpusParams { length: 1600, n_series: 1, anomalies_per_series: 4, with_drift: true };
    let corpora = vec![daphnet_like(17, cp), smd_like(17, cp)];

    let mut table = Table::new(&["Corpus", "Model", "AUC", "best F1"]);
    for corpus in &corpora {
        let params = harness_params(corpus.series[0].channels(), HarnessScale::Quick);
        let arima = build_model(ModelKind::OnlineArima, &params);
        let var: Box<dyn StreamModel> = Box::new(VarModel::new(3, 1e-6));
        for (name, model) in [("Online ARIMA", arima), ("VAR(3)", var)] {
            let (auc, f1) = evaluate(model, corpus);
            table.row(vec![
                corpus.name.clone(),
                name.to_string(),
                format!("{auc:.3}"),
                format!("{f1:.3}"),
            ]);
        }
    }
    println!("VAR vs online ARIMA (both SW + μ/σ + anomaly likelihood)\n");
    println!("{}", table.render());
    println!("VAR models cross-channel correlation that the channel-shared online");
    println!("ARIMA ignores (§IV-C); the gait corpus correlates all 9 axes.");
}
