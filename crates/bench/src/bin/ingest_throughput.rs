//! Ingestion overhead: the framed wire path vs direct in-process enqueue
//! (§E15 of EXPERIMENTS.md).
//!
//! Scenario: the 64-stream AE replica fleet of `fleet_throughput`, served
//! three ways over the same window-periodic (drift-free) 38-channel
//! stream —
//!
//! * `direct`   — `DetectorFleet` enqueue + drain rounds in-process (the
//!   §E11 batched baseline);
//! * `framed`   — the same samples length-prefix-encoded once, then
//!   decoded from an in-memory wire through `FramedTransport` into
//!   `IngestEngine` (decode + route + offer + scheduled drains). This is
//!   the leg under test: the in-bin assertion requires it to sustain
//!   **≥ 90%** of direct steps/s — the protocol must cost less than a
//!   tenth of the serving budget;
//! * `framed_tcp` — the same wire pushed through a real localhost socket
//!   by a writer thread (reported, not asserted: kernel socket buffers
//!   add machine-dependent variance);
//! * `csv`      — the text fallback from memory (reported: ~3× the bytes
//!   and float parsing, expected to trail binary).
//!
//! Direct and framed run interleaved best-of-K (escalating while the
//! ratio is under budget) so a transiently loaded machine cannot fake an
//! overshoot. Writes `bench_output/ingest_throughput.json`.
//!
//! ```sh
//! cargo run --release --bin ingest_throughput            # quick (default)
//! cargo run --release --bin ingest_throughput -- --full  # more rounds
//! ```

use std::io::Cursor;
use std::net::TcpListener;
use std::time::Instant;

use sad_core::{paper_algorithms, AlgorithmSpec, Detector, DetectorConfig, ModelKind, ScoreKind};
use sad_fleet::{DetectorFleet, FleetConfig};
use sad_ingest::{
    CsvTransport, DetectorTemplate, EngineConfig, Frame, FrameWriter, FramedTransport, Framing,
    IngestEngine, Transport,
};
use sad_models::{build_detector, BuildParams};

const CHANNELS: usize = 38;
const WINDOW: usize = 10;
const WARMUP: usize = 200;
const SEED: u64 = 42;
const STREAMS: usize = 64;
const SETTLE_ROUNDS: usize = WARMUP + 32;

/// Window-periodic stream: constant training-set statistics, so
/// μ/σ-Change never fires and the timed region never fine-tunes.
fn stream_vector(t: usize, buf: &mut [f64]) {
    let phase = std::f64::consts::TAU * (t % WINDOW) as f64 / WINDOW as f64;
    for (c, v) in buf.iter_mut().enumerate() {
        let scale = 1.0 + c as f64 * 0.1;
        *v = (phase + c as f64 * 0.37).sin() * scale + c as f64;
    }
}

fn ae_spec() -> AlgorithmSpec {
    paper_algorithms()
        .into_iter()
        .find(|s| {
            s.model == ModelKind::TwoLayerAe
                && s.label().contains("SW")
                && s.label().contains("μ")
        })
        .expect("AE / SW / μσ is in Table I")
}

fn build_params() -> BuildParams {
    let config = DetectorConfig {
        window: WINDOW,
        channels: CHANNELS,
        warmup: WARMUP,
        initial_epochs: 4,
        fine_tune_epochs: 1,
    };
    BuildParams::new(config).with_capacity(32).with_score(ScoreKind::Raw).with_seed(SEED)
}

fn fleet_config() -> FleetConfig {
    FleetConfig {
        shards: 1,
        batching: true,
        parallel: false,
        queue_capacity: 4,
        f32_infer: false,
        telemetry: true,
    }
}

/// The §E11 baseline: in-process enqueue + drain, timed steps/s.
fn serve_direct(rounds: usize) -> f64 {
    let detectors: Vec<Detector> =
        (0..STREAMS).map(|_| build_detector(ae_spec(), &build_params())).collect();
    let mut fleet = DetectorFleet::new(detectors, fleet_config());
    let mut buf = vec![0.0; CHANNELS];
    let mut out = Vec::new();
    let mut t = 0usize;
    for _ in 0..SETTLE_ROUNDS {
        stream_vector(t, &mut buf);
        for i in 0..STREAMS {
            assert!(fleet.enqueue(i, &buf));
        }
        fleet.drain_round(&mut out);
        t += 1;
    }
    let settled = fleet.stats();

    let timed = Instant::now();
    for _ in 0..rounds {
        stream_vector(t, &mut buf);
        for i in 0..STREAMS {
            assert!(fleet.enqueue(i, &buf));
        }
        fleet.drain_round(&mut out);
        t += 1;
    }
    let wall = timed.elapsed().as_secs_f64();

    let stats = fleet.stats();
    assert_eq!(stats.cohort_rebuilds, settled.cohort_rebuilds, "timed region must not fine-tune");
    let steps = stats.steps - settled.steps;
    assert_eq!(steps, rounds * STREAMS);
    steps as f64 / wall.max(1e-12)
}

/// Interleaved wire bytes for rounds `t0 .. t0 + rounds`, encoded once
/// and replayed by every rep.
fn wire_bytes(framing: Framing, t0: usize, rounds: usize) -> Vec<u8> {
    let mut writer = FrameWriter::new(Vec::new(), framing);
    let mut buf = vec![0.0; CHANNELS];
    for t in t0..t0 + rounds {
        stream_vector(t, &mut buf);
        for i in 0..STREAMS {
            writer.send(i as u64, &buf).expect("in-memory encode");
        }
    }
    writer.into_inner()
}

fn engine() -> IngestEngine {
    IngestEngine::new(
        DetectorTemplate::new(ae_spec(), build_params()),
        fleet_config(),
        EngineConfig::default(),
    )
}

fn pump(transport: &mut dyn Transport, engine: &mut IngestEngine, frames: usize) {
    let mut frame = Frame::default();
    let mut outputs = 0usize;
    let mut sink = |_: u64, _: &sad_core::StepOutput| outputs += 1;
    for _ in 0..frames {
        assert!(transport.next(&mut frame).expect("well-formed wire"), "wire ended early");
        engine.ingest(&frame, &mut sink);
    }
}

/// The wire path from memory: settle untimed, then timed decode + route +
/// offer + drain over the pre-encoded frames. Returns (steps/s, MB/s).
fn serve_wire(framing: Framing, settle: &[u8], timed_wire: &[u8], rounds: usize) -> (f64, f64) {
    let mut engine = engine();
    let mut settle_t: Box<dyn Transport>;
    let mut timed_t: Box<dyn Transport>;
    match framing {
        Framing::Binary => {
            settle_t = Box::new(FramedTransport::new(Cursor::new(settle)));
            timed_t = Box::new(FramedTransport::new(Cursor::new(timed_wire)));
        }
        Framing::Csv => {
            settle_t = Box::new(CsvTransport::new(Cursor::new(settle)));
            timed_t = Box::new(CsvTransport::new(Cursor::new(timed_wire)));
        }
    }
    pump(settle_t.as_mut(), &mut engine, SETTLE_ROUNDS * STREAMS);
    let settled = engine.stats();
    assert_eq!(settled.fleet.admitted, STREAMS, "every replica admitted during settle");
    assert!(settled.fleet.batched_rows > 0, "cohort must form during settle");

    let timed = Instant::now();
    pump(timed_t.as_mut(), &mut engine, rounds * STREAMS);
    let wall = timed.elapsed().as_secs_f64();

    let stats = engine.stats();
    assert_eq!(stats.fleet.cohort_rebuilds, settled.fleet.cohort_rebuilds, "no timed fine-tunes");
    let steps = stats.fleet.steps - settled.fleet.steps;
    assert_eq!(steps, rounds * STREAMS, "every frame served, nothing dropped");
    (steps as f64 / wall.max(1e-12), timed_t.bytes_read() as f64 / wall.max(1e-12) / 1e6)
}

/// The same framed wire through a real localhost socket: a writer thread
/// pushes pre-encoded bytes as fast as the kernel accepts them, so the
/// reading engine stays the bottleneck.
fn serve_tcp(settle: &[u8], timed_wire: &[u8], rounds: usize) -> (f64, f64) {
    let listener = TcpListener::bind("127.0.0.1:0").expect("loopback bind");
    let addr = listener.local_addr().unwrap();
    let (settle_bytes, timed_bytes) = (settle.to_vec(), timed_wire.to_vec());
    let writer = std::thread::spawn(move || {
        use std::io::Write as _;
        let mut socket = std::net::TcpStream::connect(addr).expect("loopback connect");
        socket.write_all(&settle_bytes).expect("settle bytes");
        socket.write_all(&timed_bytes).expect("timed bytes");
    });
    let (socket, _) = listener.accept().expect("accept");
    let mut engine = engine();
    let mut transport = FramedTransport::new(socket);
    pump(&mut transport, &mut engine, SETTLE_ROUNDS * STREAMS);
    let before = (engine.stats(), transport.bytes_read());

    let timed = Instant::now();
    pump(&mut transport, &mut engine, rounds * STREAMS);
    let wall = timed.elapsed().as_secs_f64();
    writer.join().expect("writer thread");

    let steps = engine.stats().fleet.steps - before.0.fleet.steps;
    assert_eq!(steps, rounds * STREAMS);
    let bytes = transport.bytes_read() - before.1;
    (steps as f64 / wall.max(1e-12), bytes as f64 / wall.max(1e-12) / 1e6)
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let rounds = if full { 1200 } else { 400 };
    println!(
        "ingest throughput: AE w={WINDOW} x {CHANNELS}ch replica fleet, {STREAMS} streams, \
         {rounds} timed rounds, single-threaded",
    );

    let settle = wire_bytes(Framing::Binary, 0, SETTLE_ROUNDS);
    let timed = wire_bytes(Framing::Binary, SETTLE_ROUNDS, rounds);
    let settle_csv = wire_bytes(Framing::Csv, 0, SETTLE_ROUNDS);
    let timed_csv = wire_bytes(Framing::Csv, SETTLE_ROUNDS, rounds);
    let frame_bytes = 4 + 8 + 8 * CHANNELS;
    assert_eq!(timed.len(), rounds * STREAMS * frame_bytes, "fixed-width binary frames");

    // The leg under test, interleaved best-of-K against the baseline:
    // escalate reps while the ratio is under budget so a transient load
    // spike cannot fake an overshoot.
    let (min_reps, max_reps) = (3, 7);
    let mut reps = 0;
    let mut best_direct = f64::MIN;
    let mut best_framed = f64::MIN;
    let mut framed_mbs = 0.0f64;
    let ratio = loop {
        best_direct = best_direct.max(serve_direct(rounds));
        let (sps, mbs) = serve_wire(Framing::Binary, &settle, &timed, rounds);
        if sps > best_framed {
            (best_framed, framed_mbs) = (sps, mbs);
        }
        reps += 1;
        let r = best_framed / best_direct.max(1e-12);
        if (reps >= min_reps && r >= 0.90) || reps >= max_reps {
            break r;
        }
    };
    println!(
        "  direct  {best_direct:>9.0} steps/s\n  framed  {best_framed:>9.0} steps/s \
         ({:.1}% of direct, {framed_mbs:.0} MB/s decoded, {reps} reps)",
        ratio * 100.0,
    );

    let (tcp_sps, tcp_mbs) = serve_tcp(&settle, &timed, rounds);
    println!("  tcp     {tcp_sps:>9.0} steps/s ({tcp_mbs:.0} MB/s over loopback)");
    let (csv_sps, csv_mbs) = serve_wire(Framing::Csv, &settle_csv, &timed_csv, rounds);
    println!("  csv     {csv_sps:>9.0} steps/s ({csv_mbs:.0} MB/s parsed)");

    let json = format!(
        "{{\n  \"harness\": \"ingest_throughput\",\n  \"profile\": \"{}\",\n  \
         \"model\": \"2-layer AE / SW / μ/σ\",\n  \"streams\": {STREAMS},\n  \
         \"window\": {WINDOW},\n  \"channels\": {CHANNELS},\n  \"warmup\": {WARMUP},\n  \
         \"rounds\": {rounds},\n  \"reps\": {reps},\n  \"frame_bytes\": {frame_bytes},\n  \
         \"direct_steps_per_sec\": {best_direct:.1},\n  \
         \"framed_steps_per_sec\": {best_framed:.1},\n  \
         \"framed_ratio\": {ratio:.4},\n  \"framed_mb_per_sec\": {framed_mbs:.1},\n  \
         \"tcp_steps_per_sec\": {tcp_sps:.1},\n  \"tcp_mb_per_sec\": {tcp_mbs:.1},\n  \
         \"csv_steps_per_sec\": {csv_sps:.1},\n  \"csv_mb_per_sec\": {csv_mbs:.1},\n  \
         \"budget_ratio\": 0.90\n}}\n",
        if full { "full" } else { "quick" },
    );
    match std::fs::create_dir_all("bench_output")
        .and_then(|()| std::fs::write("bench_output/ingest_throughput.json", &json))
    {
        Ok(()) => println!("-> bench_output/ingest_throughput.json"),
        Err(e) => eprintln!("could not write artifact: {e}"),
    }

    assert!(
        ratio >= 0.90,
        "framed ingest sustains only {:.1}% of direct enqueue ({best_framed:.0} vs \
         {best_direct:.0} steps/s) — the wire protocol must cost under 10%",
        ratio * 100.0,
    );
}
