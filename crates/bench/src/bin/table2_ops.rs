//! Regenerates the paper's **Table II**: mathematical operations required
//! per time step by the two Task-2 drift strategies, as closed forms in the
//! training-set length `m`, representation length `w` and channel count `N`
//! — and, alongside, the operation counts *measured* by the instrumented
//! implementations plus wall-clock timings.
//!
//! ```sh
//! cargo run --release -p sad-bench --bin table2_ops
//! ```

use sad_bench::Table;
use sad_core::{
    DriftDetector, FeatureVector, KswinDetector, MuSigmaChange, SlidingWindowSet,
    TrainingSetStrategy,
};
use sad_stats::opcount::{kswin_analytic, mu_sigma_analytic};
use std::time::Instant;

/// Streams `steps` synthetic windows through a detector over a sliding
/// window of `m`, returning (measured ops per step, seconds per step).
fn measure(det: &mut dyn DriftDetector, n: usize, w: usize, m: usize, steps: usize) -> (f64, f64) {
    let mut strat = SlidingWindowSet::new(m);
    let mut t0 = 0usize;
    // Pre-fill so every measured step is a full replace + test.
    for _ in 0..m {
        let x = window(t0, n, w);
        let update = strat.update(&x, 0.0);
        det.observe(&x, &update, strat.training_set());
        t0 += 1;
    }
    det.on_fine_tune(strat.training_set());
    let before_ops = det.ops();
    let started = Instant::now();
    for _ in 0..steps {
        let x = window(t0, n, w);
        let update = strat.update(&x, 0.0);
        det.observe(&x, &update, strat.training_set());
        t0 += 1;
    }
    let elapsed = started.elapsed().as_secs_f64();
    let ops = det.ops().total() - before_ops.total();
    (ops as f64 / steps as f64, elapsed / steps as f64)
}

fn window(t: usize, n: usize, w: usize) -> FeatureVector {
    let data: Vec<f64> = (0..w * n)
        .map(|i| (((t * w * n + i) as f64) * 0.37).sin())
        .collect();
    FeatureVector::new(data, w, n)
}

fn main() {
    println!("Table II: mathematical operations for Task 2 methods (per time step)\n");
    println!("paper closed forms: μ/σ-Change = (6Nw adds, 2Nw muls, 3Nw cmps);");
    println!("KSWIN = (2Nmw adds, 2Nmw muls, (1+4m)Nw·log2(mw)+N cmps)\n");

    let mut analytic = Table::new(&[
        "N", "w", "m", "μ/σ adds", "μ/σ muls", "μ/σ cmps", "KS adds", "KS muls", "KS cmps",
    ]);
    let mut measured = Table::new(&[
        "N", "w", "m", "μ/σ ops/step", "μ/σ ns/step", "KS ops/step", "KS ns/step", "KS/μσ ops ratio",
    ]);

    // The paper's corpora dimensions (9 / 19 / 38 channels) with w = 100,
    // m = 50 — plus a smaller configuration for contrast.
    for &(n, w, m) in &[(9usize, 100usize, 50usize), (19, 100, 50), (38, 100, 50), (9, 25, 40)] {
        let ms = mu_sigma_analytic(n, w);
        let ks = kswin_analytic(n, w, m);
        analytic.row(vec![
            n.to_string(),
            w.to_string(),
            m.to_string(),
            ms.additions.to_string(),
            ms.multiplications.to_string(),
            ms.comparisons.to_string(),
            ks.additions.to_string(),
            ks.multiplications.to_string(),
            ks.comparisons.to_string(),
        ]);

        let steps = 200;
        let mut ms_det = MuSigmaChange::new();
        let (ms_ops, ms_time) = measure(&mut ms_det, n, w, m, steps);
        let mut ks_det = KswinDetector::new(0.01);
        let (ks_ops, ks_time) = measure(&mut ks_det, n, w, m, steps);
        measured.row(vec![
            n.to_string(),
            w.to_string(),
            m.to_string(),
            format!("{ms_ops:.0}"),
            format!("{:.0}", ms_time * 1e9),
            format!("{ks_ops:.0}"),
            format!("{:.0}", ks_time * 1e9),
            format!("{:.1}x", ks_ops / ms_ops.max(1.0)),
        ]);
    }

    println!("analytic (paper's closed forms):\n{}", analytic.render());
    println!("measured (instrumented implementations):\n{}", measured.render());
    println!("shape check: KSWIN costs orders of magnitude more than μ/σ-Change,");
    println!("matching the paper's conclusion that motivates the cheaper strategy.");
}

#[cfg(test)]
mod tests {
    use sad_core::{paper_algorithms, DetectorConfig, ModelKind, Task1, Task2};
    use sad_models::{build_detector, build_scorer, build_shared_warmup, BuildParams};

    /// Table II's operation tallies must not depend on how a detector was
    /// warmed up: the shared-prefix path feeds every drift variant the
    /// exact observe() stream a standalone warm-up would, so the op counts
    /// (the measured columns of Table II) are invariant between the two
    /// paths — and so are the trigger times.
    #[test]
    fn drift_op_counts_invariant_under_shared_warmup() {
        let config = DetectorConfig {
            window: 6,
            channels: 2,
            warmup: 60,
            initial_epochs: 1,
            fine_tune_epochs: 1,
        };
        let params = BuildParams::new(config).with_capacity(12).with_kswin_stride(2);
        let series: Vec<Vec<f64>> = (0..200)
            .map(|t| vec![(t as f64 * 0.11).sin(), (t as f64 * 0.07).cos() + (t as f64 * 0.002)])
            .collect();
        let warm = params.config.warmup;
        let (model, task1) = (ModelKind::OnlineArima, Task1::SlidingWindow);
        let task2s = [Task2::MuSigma, Task2::Kswin];

        let mut shared = build_shared_warmup(model, task1, &task2s, &params);
        for s in &series[..warm] {
            shared.step(s);
        }
        for (v, &task2) in task2s.iter().enumerate() {
            let spec = paper_algorithms()
                .into_iter()
                .find(|s| s.model == model && s.task1 == task1 && s.task2 == task2)
                .unwrap();
            let mut fork = shared.fork(v, build_scorer(params.score, &params));
            let mut standalone = build_detector(spec, &params);
            for s in &series[..warm] {
                assert!(standalone.step(s).is_none());
            }
            // Warm-up observes alone must already agree…
            assert_eq!(fork.drift_ops(), standalone.drift_ops(), "{}: warm-up ops", spec.label());
            fork.run(&series[warm..]);
            standalone.run(&series[warm..]);
            // …and so must the full post-warm-up tally and trigger times.
            assert_eq!(fork.drift_ops(), standalone.drift_ops(), "{}: total ops", spec.label());
            assert_eq!(fork.drift_times(), standalone.drift_times(), "{}", spec.label());
        }
    }
}
