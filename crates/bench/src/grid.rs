//! The shared (spec × corpus × scorer) evaluation grid behind Table III.
//!
//! [`run_grid`] flattens the full cross product into independent cells and
//! executes them on a [`JobPool`]. Cell order is fixed (spec-major, then
//! corpus, then scorer) and results come back in that order regardless of
//! worker count, so table assembly downstream is purely positional — and
//! parallel output is byte-identical to serial output.

use crate::eval::{evaluate_spec, harness_params, EvalRow, HarnessScale};
use crate::parallel::{JobPool, JobReport};
use sad_core::{AlgorithmSpec, ScoreKind};
use sad_data::Corpus;

/// Flat result of one grid run.
#[derive(Debug, Clone)]
pub struct GridRun {
    /// One metric row per cell, in [`cell_index`] order.
    pub rows: Vec<EvalRow>,
    /// Human-readable label per cell (`spec @ corpus / scorer`), aligned
    /// with `rows` — used for the timing artifact.
    pub labels: Vec<String>,
    /// Pool telemetry (per-cell wall times, total wall time, worker count).
    pub report_times: Vec<std::time::Duration>,
    /// End-to-end wall time of the grid run.
    pub wall_time: std::time::Duration,
    /// Worker threads used.
    pub jobs_used: usize,
}

impl GridRun {
    /// The row for `(spec_idx, corpus_idx, scorer_idx)`.
    pub fn row(&self, spec_idx: usize, corpus_idx: usize, scorer_idx: usize, dims: GridDims) -> EvalRow {
        self.rows[cell_index(spec_idx, corpus_idx, scorer_idx, dims)]
    }

    /// Sum of per-cell wall times (see `JobReport::cpu_time` for the
    /// oversubscription caveat).
    pub fn cpu_time(&self) -> std::time::Duration {
        self.report_times.iter().sum()
    }
}

/// Grid dimensions needed to map a cell triple to its flat index.
#[derive(Debug, Clone, Copy)]
pub struct GridDims {
    /// Number of corpora.
    pub corpora: usize,
    /// Number of scorers.
    pub scorers: usize,
}

/// Flat index of `(spec_idx, corpus_idx, scorer_idx)` — spec-major, then
/// corpus, then scorer.
#[inline]
pub fn cell_index(spec_idx: usize, corpus_idx: usize, scorer_idx: usize, dims: GridDims) -> usize {
    (spec_idx * dims.corpora + corpus_idx) * dims.scorers + scorer_idx
}

/// Evaluates every `(spec, corpus, scorer)` cell of the grid on `pool`.
///
/// Each cell is a pure function of its index: it derives its own
/// [`harness_params`] and seeds its own detectors, so execution order
/// cannot leak into the results.
pub fn run_grid(
    specs: &[AlgorithmSpec],
    corpora: &[Corpus],
    scorers: &[ScoreKind],
    scale: HarnessScale,
    pool: JobPool,
) -> GridRun {
    let dims = GridDims { corpora: corpora.len(), scorers: scorers.len() };
    let n_cells = specs.len() * corpora.len() * scorers.len();

    let JobReport { results, job_times, wall_time, jobs_used } = pool.run(n_cells, |cell| {
        let scorer_idx = cell % dims.scorers;
        let corpus_idx = (cell / dims.scorers) % dims.corpora;
        let spec_idx = cell / (dims.scorers * dims.corpora);
        let corpus = &corpora[corpus_idx];
        let params = harness_params(corpus.series[0].channels(), scale);
        evaluate_spec(specs[spec_idx], &params, corpus, scorers[scorer_idx])
    });

    let mut labels = Vec::with_capacity(n_cells);
    for spec in specs {
        for corpus in corpora {
            for scorer in scorers {
                labels.push(format!("{} @ {} / {}", spec.label(), corpus.name, scorer.label()));
            }
        }
    }

    GridRun { rows: results, labels, report_times: job_times, wall_time, jobs_used }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_index_is_a_bijection() {
        let dims = GridDims { corpora: 3, scorers: 5 };
        let mut seen = [false; 4 * 3 * 5];
        for s in 0..4 {
            for c in 0..3 {
                for k in 0..5 {
                    let idx = cell_index(s, c, k, dims);
                    assert!(!seen[idx], "duplicate index {idx}");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cell_index_inverts_the_pool_mapping() {
        // The decomposition inside `run_grid` must invert `cell_index`.
        let dims = GridDims { corpora: 3, scorers: 2 };
        for spec_idx in 0..5 {
            for corpus_idx in 0..3 {
                for scorer_idx in 0..2 {
                    let cell = cell_index(spec_idx, corpus_idx, scorer_idx, dims);
                    assert_eq!(cell % dims.scorers, scorer_idx);
                    assert_eq!((cell / dims.scorers) % dims.corpora, corpus_idx);
                    assert_eq!(cell / (dims.scorers * dims.corpora), spec_idx);
                }
            }
        }
    }
}
