//! The shared (spec × corpus × scorer) evaluation grid behind Table III.
//!
//! [`run_grid`] schedules one job per **root** of the shared-prefix
//! evaluation tree — a `(model, Task1, corpus)` node covering every
//! Task-2 drift variant of that pair ([`plan_roots`]). Inside each root
//! the warm-up segment and the initial model fit are streamed **once**
//! and forked per drift variant ([`crate::eval::evaluate_tree`]); inside
//! each fork the scorer dimension is fanned out through a single shared
//! detector pass per series. The paper grid (26 specs × 3 corpora)
//! therefore schedules 42 roots instead of the 78 `(spec, corpus)`
//! groups of the previous harness — 12 paired `(model, Task1)` combos
//! plus 2 PCB-iForest singletons, × 3 corpora.
//!
//! Root results are scattered back into the legacy per-cell layout: cell
//! order stays fixed (spec-major, then corpus, then scorer) and results
//! come back in that order regardless of worker count, so table assembly
//! downstream is purely positional — and parallel output is
//! byte-identical to serial output, which in turn is byte-identical to
//! the pre-tree per-group grid and the pre-fan-out per-cell grid.

use crate::eval::{evaluate_tree, harness_params, EvalRow, HarnessScale};
use crate::parallel::{JobPool, JobReport};
use sad_core::{AlgorithmSpec, ModelKind, ScoreKind, Task1, Task2};
use sad_data::Corpus;
use std::time::Duration;

/// Flat result of one grid run.
#[derive(Debug, Clone)]
pub struct GridRun {
    /// One metric row per cell, in [`cell_index`] order.
    pub rows: Vec<EvalRow>,
    /// Human-readable label per cell (`spec @ corpus / scorer`), aligned
    /// with `rows` — used for the timing artifact.
    pub labels: Vec<String>,
    /// Per-cell wall-time view, aligned with `rows`. Cells of one group
    /// share a detector pass, so each cell reports its group's wall time
    /// divided by the scorer count (an amortized legacy view; the true
    /// measured unit is `root_times`).
    pub report_times: Vec<Duration>,
    /// Human-readable label per group (`spec @ corpus`), in group order
    /// (spec-major, then corpus).
    pub group_labels: Vec<String>,
    /// Per-group wall-time view. Groups of one root share the warm-up +
    /// initial fit, so each group reports its root's wall time divided by
    /// the variant count (amortized legacy view; the measured scheduling
    /// unit is `root_times`).
    pub group_times: Vec<Duration>,
    /// Whether each group's scorer fan-out shared a single detector pass
    /// per series (`false` for anomaly-feedback strategies, which share
    /// only the warm-up).
    pub group_shared: Vec<bool>,
    /// Legacy training seconds per group: the shared initial fit is
    /// counted in *every* member group of a root, matching what a
    /// standalone group run would have reported.
    pub group_train_seconds: Vec<f64>,
    /// Human-readable label per root (`model / task1 @ corpus`), in root
    /// order (root-major, then corpus).
    pub root_labels: Vec<String>,
    /// Measured wall time per root — the actual scheduling unit.
    pub root_times: Vec<Duration>,
    /// True training seconds per root (the shared initial fit counted
    /// once across all drift variants and scorers).
    pub root_train_seconds: Vec<f64>,
    /// Number of `fit_initial` invocations per root (one per series that
    /// reached warm-up, shared across the root's drift variants).
    pub root_initial_fits: Vec<usize>,
    /// Whether each root's scorer fan-out shared a single detector pass.
    pub root_shared: Vec<bool>,
    /// Number of drift variants forked from each root.
    pub root_variants: Vec<usize>,
    /// End-to-end wall time of the grid run.
    pub wall_time: Duration,
    /// Worker threads used.
    pub jobs_used: usize,
}

impl GridRun {
    /// The row for `(spec_idx, corpus_idx, scorer_idx)`.
    pub fn row(&self, spec_idx: usize, corpus_idx: usize, scorer_idx: usize, dims: GridDims) -> EvalRow {
        self.rows[cell_index(spec_idx, corpus_idx, scorer_idx, dims)]
    }

    /// Sum of per-root wall times (see `JobReport::cpu_time` for the
    /// oversubscription caveat).
    pub fn cpu_time(&self) -> Duration {
        self.root_times.iter().sum()
    }

    /// Total `fit_initial` invocations across the grid — the headline
    /// saving of the shared-prefix tree (42 on the paper grid's quick
    /// profile, down from the 78 of the per-group schedule).
    pub fn initial_fits(&self) -> usize {
        self.root_initial_fits.iter().sum()
    }
}

/// Grid dimensions needed to map a cell triple to its flat index.
#[derive(Debug, Clone, Copy)]
pub struct GridDims {
    /// Number of corpora.
    pub corpora: usize,
    /// Number of scorers.
    pub scorers: usize,
}

/// Flat index of `(spec_idx, corpus_idx, scorer_idx)` — spec-major, then
/// corpus, then scorer.
#[inline]
pub fn cell_index(spec_idx: usize, corpus_idx: usize, scorer_idx: usize, dims: GridDims) -> usize {
    (spec_idx * dims.corpora + corpus_idx) * dims.scorers + scorer_idx
}

/// Flat index of the `(spec_idx, corpus_idx)` group — spec-major, then
/// corpus. Groups in this order, each expanded over the scorer dimension,
/// reproduce [`cell_index`] order exactly, which is what lets root
/// results be scattered straight into the per-cell layout.
#[inline]
pub fn group_index(spec_idx: usize, corpus_idx: usize, dims: GridDims) -> usize {
    spec_idx * dims.corpora + corpus_idx
}

/// One root of the shared-prefix evaluation tree: a `(model, Task1)` pair
/// and the specs (identified by index into the scheduled spec list) that
/// share its warm-up + initial fit, differing only in their Task-2 drift
/// variant.
#[derive(Debug, Clone)]
pub struct RootSpec {
    /// The shared ML model.
    pub model: ModelKind,
    /// The shared Task-1 training-set strategy.
    pub task1: Task1,
    /// Indices into the spec list, in first-occurrence order.
    pub members: Vec<usize>,
    /// The members' drift variants, aligned with `members`.
    pub task2s: Vec<Task2>,
}

impl RootSpec {
    /// Display label, e.g. `"USAD / ARES"`.
    pub fn label(&self) -> String {
        format!("{} / {}", self.model.label(), self.task1.label())
    }
}

/// Groups a spec list into shared-prefix roots by `(model, Task1)`,
/// preserving first-occurrence order. On the paper grid this folds the
/// 26 specs into 14 roots (12 drift-variant pairs + the 2 PCB-iForest
/// singletons).
pub fn plan_roots(specs: &[AlgorithmSpec]) -> Vec<RootSpec> {
    let mut roots: Vec<RootSpec> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        match roots.iter_mut().find(|r| r.model == spec.model && r.task1 == spec.task1) {
            Some(root) => {
                root.members.push(i);
                root.task2s.push(spec.task2);
            }
            None => roots.push(RootSpec {
                model: spec.model,
                task1: spec.task1,
                members: vec![i],
                task2s: vec![spec.task2],
            }),
        }
    }
    roots
}

/// Evaluates the grid on `pool`, one job per `(root, corpus)` with the
/// drift-variant and scorer dimensions collapsed inside the job.
///
/// Each root job is a pure function of its index: it derives its own
/// [`harness_params`] and seeds its own detectors, so execution order
/// cannot leak into the results.
pub fn run_grid(
    specs: &[AlgorithmSpec],
    corpora: &[Corpus],
    scorers: &[ScoreKind],
    scale: HarnessScale,
    pool: JobPool,
) -> GridRun {
    let dims = GridDims { corpora: corpora.len(), scorers: scorers.len() };
    let roots = plan_roots(specs);
    let n_roots = roots.len() * corpora.len();

    let JobReport { results, job_times, wall_time, jobs_used } = pool.run(n_roots, |job| {
        let corpus_idx = job % dims.corpora;
        let root = &roots[job / dims.corpora];
        let corpus = &corpora[corpus_idx];
        let params = harness_params(corpus.series[0].channels(), scale);
        evaluate_tree(root.model, root.task1, &root.task2s, &params, corpus, scorers)
    });

    // Scatter root results into the per-cell / per-group layouts. Scatter
    // (not concatenation): a root's member specs are interleaved with
    // other roots' in cell order, but each `(spec, corpus, scorer)` slot
    // is written exactly once, so the output is positionally identical to
    // the per-group schedule.
    let n_groups = specs.len() * corpora.len();
    let n_cells = n_groups * dims.scorers;
    let mut rows = vec![EvalRow::default(); n_cells];
    let mut report_times = vec![Duration::ZERO; n_cells];
    let mut group_times = vec![Duration::ZERO; n_groups];
    let mut group_shared = vec![true; n_groups];
    let mut group_train_seconds = vec![0.0f64; n_groups];
    let mut root_times = Vec::with_capacity(n_roots);
    let mut root_train_seconds = Vec::with_capacity(n_roots);
    let mut root_initial_fits = Vec::with_capacity(n_roots);
    let mut root_shared = Vec::with_capacity(n_roots);
    let mut root_variants = Vec::with_capacity(n_roots);
    for (job, tree) in results.into_iter().enumerate() {
        let corpus_idx = job % dims.corpora;
        let root = &roots[job / dims.corpora];
        debug_assert_eq!(tree.rows.len(), root.members.len());
        let amortized_group = job_times[job] / root.members.len().max(1) as u32;
        let amortized_cell = amortized_group / dims.scorers.max(1) as u32;
        for (v, &spec_idx) in root.members.iter().enumerate() {
            let group = group_index(spec_idx, corpus_idx, dims);
            group_times[group] = amortized_group;
            group_shared[group] = tree.shared_pass;
            group_train_seconds[group] = tree.variant_train_seconds[v];
            for (k, row) in tree.rows[v].iter().enumerate() {
                let cell = cell_index(spec_idx, corpus_idx, k, dims);
                rows[cell] = *row;
                report_times[cell] = amortized_cell;
            }
        }
        root_times.push(job_times[job]);
        root_train_seconds.push(tree.train_seconds);
        root_initial_fits.push(tree.initial_fits);
        root_shared.push(tree.shared_pass);
        root_variants.push(root.members.len());
    }

    let mut labels = Vec::with_capacity(n_cells);
    let mut group_labels = Vec::with_capacity(n_groups);
    for spec in specs {
        for corpus in corpora {
            group_labels.push(format!("{} @ {}", spec.label(), corpus.name));
            for scorer in scorers {
                labels.push(format!("{} @ {} / {}", spec.label(), corpus.name, scorer.label()));
            }
        }
    }
    let mut root_labels = Vec::with_capacity(n_roots);
    for root in &roots {
        for corpus in corpora {
            root_labels.push(format!("{} @ {}", root.label(), corpus.name));
        }
    }

    GridRun {
        rows,
        labels,
        report_times,
        group_labels,
        group_times,
        group_shared,
        group_train_seconds,
        root_labels,
        root_times,
        root_train_seconds,
        root_initial_fits,
        root_shared,
        root_variants,
        wall_time,
        jobs_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sad_core::paper_algorithms;

    #[test]
    fn cell_index_is_a_bijection() {
        let dims = GridDims { corpora: 3, scorers: 5 };
        let mut seen = [false; 4 * 3 * 5];
        for s in 0..4 {
            for c in 0..3 {
                for k in 0..5 {
                    let idx = cell_index(s, c, k, dims);
                    assert!(!seen[idx], "duplicate index {idx}");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cell_index_inverts_the_pool_mapping() {
        // The group decomposition, expanded over the scorer dimension,
        // must invert `cell_index`.
        let dims = GridDims { corpora: 3, scorers: 2 };
        for spec_idx in 0..5 {
            for corpus_idx in 0..3 {
                let group = group_index(spec_idx, corpus_idx, dims);
                assert_eq!(group % dims.corpora, corpus_idx);
                assert_eq!(group / dims.corpora, spec_idx);
                for scorer_idx in 0..2 {
                    let cell = cell_index(spec_idx, corpus_idx, scorer_idx, dims);
                    // Expanding group rows in group order lands each
                    // scorer row exactly at its cell index.
                    assert_eq!(cell, group * dims.scorers + scorer_idx);
                }
            }
        }
    }

    /// The paper grid folds into 14 roots: 12 drift-variant pairs plus
    /// the two PCB-iForest singletons — 42 scheduled jobs over 3 corpora
    /// instead of the 78 per-group jobs.
    #[test]
    fn paper_grid_plans_fourteen_roots() {
        let specs = paper_algorithms();
        let roots = plan_roots(&specs);
        assert_eq!(roots.len(), 14);
        let members: usize = roots.iter().map(|r| r.members.len()).sum();
        assert_eq!(members, specs.len());
        let pairs = roots.iter().filter(|r| r.members.len() == 2).count();
        let singletons = roots.iter().filter(|r| r.members.len() == 1).count();
        assert_eq!((pairs, singletons), (12, 2));
        for root in &roots {
            assert_eq!(
                root.members.len() == 1,
                root.model == ModelKind::PcbIForest,
                "{}: only PCB-iForest lacks a drift pair",
                root.label()
            );
            // Every member really shares the root's prefix…
            for (&m, &task2) in root.members.iter().zip(&root.task2s) {
                assert_eq!(specs[m].model, root.model);
                assert_eq!(specs[m].task1, root.task1);
                assert_eq!(specs[m].task2, task2);
            }
        }
        // …and every spec index appears in exactly one root.
        let mut seen = vec![false; specs.len()];
        for root in &roots {
            for &m in &root.members {
                assert!(!seen[m], "spec {m} scheduled twice");
                seen[m] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }
}
