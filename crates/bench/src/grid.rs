//! The shared (spec × corpus × scorer) evaluation grid behind Table III.
//!
//! [`run_grid`] schedules one job per `(spec, corpus)` **group** on a
//! [`JobPool`]; inside each group the scorer dimension is fanned out
//! through a single shared detector pass per series
//! ([`crate::eval::evaluate_spec_scorers`]), so the grid streams each
//! series once instead of once per scorer. Group results are scattered
//! back into the legacy per-cell layout: cell order stays fixed
//! (spec-major, then corpus, then scorer) and results come back in that
//! order regardless of worker count, so table assembly downstream is
//! purely positional — and parallel output is byte-identical to serial
//! output, which in turn is byte-identical to the pre-fan-out per-cell
//! grid.

use crate::eval::{evaluate_spec_scorers, harness_params, EvalRow, GroupEval, HarnessScale};
use crate::parallel::{JobPool, JobReport};
use sad_core::{AlgorithmSpec, ScoreKind};
use sad_data::Corpus;

/// Flat result of one grid run.
#[derive(Debug, Clone)]
pub struct GridRun {
    /// One metric row per cell, in [`cell_index`] order.
    pub rows: Vec<EvalRow>,
    /// Human-readable label per cell (`spec @ corpus / scorer`), aligned
    /// with `rows` — used for the timing artifact.
    pub labels: Vec<String>,
    /// Per-cell wall-time view, aligned with `rows`. Cells of one group
    /// share a detector pass, so each cell reports its group's wall time
    /// divided by the scorer count (an amortized legacy view; the true
    /// measured unit is `group_times`).
    pub report_times: Vec<std::time::Duration>,
    /// Human-readable label per group (`spec @ corpus`), in group order
    /// (spec-major, then corpus).
    pub group_labels: Vec<String>,
    /// Measured wall time per group — the actual scheduling unit.
    pub group_times: Vec<std::time::Duration>,
    /// Whether each group's scorer fan-out shared a single detector pass
    /// per series (`false` for anomaly-feedback strategies, which share
    /// only the warm-up).
    pub group_shared: Vec<bool>,
    /// True training seconds per group (shared work counted once).
    pub group_train_seconds: Vec<f64>,
    /// End-to-end wall time of the grid run.
    pub wall_time: std::time::Duration,
    /// Worker threads used.
    pub jobs_used: usize,
}

impl GridRun {
    /// The row for `(spec_idx, corpus_idx, scorer_idx)`.
    pub fn row(&self, spec_idx: usize, corpus_idx: usize, scorer_idx: usize, dims: GridDims) -> EvalRow {
        self.rows[cell_index(spec_idx, corpus_idx, scorer_idx, dims)]
    }

    /// Sum of per-group wall times (see `JobReport::cpu_time` for the
    /// oversubscription caveat).
    pub fn cpu_time(&self) -> std::time::Duration {
        self.group_times.iter().sum()
    }
}

/// Grid dimensions needed to map a cell triple to its flat index.
#[derive(Debug, Clone, Copy)]
pub struct GridDims {
    /// Number of corpora.
    pub corpora: usize,
    /// Number of scorers.
    pub scorers: usize,
}

/// Flat index of `(spec_idx, corpus_idx, scorer_idx)` — spec-major, then
/// corpus, then scorer.
#[inline]
pub fn cell_index(spec_idx: usize, corpus_idx: usize, scorer_idx: usize, dims: GridDims) -> usize {
    (spec_idx * dims.corpora + corpus_idx) * dims.scorers + scorer_idx
}

/// Flat index of the `(spec_idx, corpus_idx)` group — spec-major, then
/// corpus. Groups in this order, each expanded over the scorer dimension,
/// reproduce [`cell_index`] order exactly, which is what lets group
/// results be concatenated straight into the per-cell layout.
#[inline]
pub fn group_index(spec_idx: usize, corpus_idx: usize, dims: GridDims) -> usize {
    spec_idx * dims.corpora + corpus_idx
}

/// Evaluates the grid on `pool`, one job per `(spec, corpus)` group with
/// the scorer dimension fanned out inside the job.
///
/// Each group is a pure function of its index: it derives its own
/// [`harness_params`] and seeds its own detectors, so execution order
/// cannot leak into the results.
pub fn run_grid(
    specs: &[AlgorithmSpec],
    corpora: &[Corpus],
    scorers: &[ScoreKind],
    scale: HarnessScale,
    pool: JobPool,
) -> GridRun {
    let dims = GridDims { corpora: corpora.len(), scorers: scorers.len() };
    let n_groups = specs.len() * corpora.len();

    let JobReport { results, job_times, wall_time, jobs_used } = pool.run(n_groups, |group| {
        let corpus_idx = group % dims.corpora;
        let spec_idx = group / dims.corpora;
        let corpus = &corpora[corpus_idx];
        let params = harness_params(corpus.series[0].channels(), scale);
        evaluate_spec_scorers(specs[spec_idx], &params, corpus, scorers)
    });

    // Scatter group rows into the per-cell layout. Group order expanded
    // over scorers IS cell order, so this is a flat concatenation.
    let n_cells = n_groups * dims.scorers;
    let mut rows = Vec::with_capacity(n_cells);
    let mut report_times = Vec::with_capacity(n_cells);
    let mut group_shared = Vec::with_capacity(n_groups);
    let mut group_train_seconds = Vec::with_capacity(n_groups);
    for (group, eval) in results.into_iter().enumerate() {
        let GroupEval { rows: group_rows, shared_pass, train_seconds } = eval;
        debug_assert_eq!(group_rows.len(), dims.scorers);
        rows.extend(group_rows);
        let amortized = job_times[group] / dims.scorers.max(1) as u32;
        report_times.extend(std::iter::repeat_n(amortized, dims.scorers));
        group_shared.push(shared_pass);
        group_train_seconds.push(train_seconds);
    }

    let mut labels = Vec::with_capacity(n_cells);
    let mut group_labels = Vec::with_capacity(n_groups);
    for spec in specs {
        for corpus in corpora {
            group_labels.push(format!("{} @ {}", spec.label(), corpus.name));
            for scorer in scorers {
                labels.push(format!("{} @ {} / {}", spec.label(), corpus.name, scorer.label()));
            }
        }
    }

    GridRun {
        rows,
        labels,
        report_times,
        group_labels,
        group_times: job_times,
        group_shared,
        group_train_seconds,
        wall_time,
        jobs_used,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_index_is_a_bijection() {
        let dims = GridDims { corpora: 3, scorers: 5 };
        let mut seen = [false; 4 * 3 * 5];
        for s in 0..4 {
            for c in 0..3 {
                for k in 0..5 {
                    let idx = cell_index(s, c, k, dims);
                    assert!(!seen[idx], "duplicate index {idx}");
                    seen[idx] = true;
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn cell_index_inverts_the_pool_mapping() {
        // The group decomposition inside `run_grid`, expanded over the
        // scorer dimension, must invert `cell_index`.
        let dims = GridDims { corpora: 3, scorers: 2 };
        for spec_idx in 0..5 {
            for corpus_idx in 0..3 {
                let group = group_index(spec_idx, corpus_idx, dims);
                assert_eq!(group % dims.corpora, corpus_idx);
                assert_eq!(group / dims.corpora, spec_idx);
                for scorer_idx in 0..2 {
                    let cell = cell_index(spec_idx, corpus_idx, scorer_idx, dims);
                    // Concatenating group rows in group order lands each
                    // scorer row exactly at its cell index.
                    assert_eq!(cell, group * dims.scorers + scorer_idx);
                }
            }
        }
    }
}
