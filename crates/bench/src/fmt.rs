//! Minimal fixed-width table printer for the experiment binaries.

/// A plain-text table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Creates a table from an owned header (for dynamically built headers —
    /// avoids the `Box::leak`-per-cell pattern the harness once used).
    pub fn with_header(header: Vec<String>) -> Self {
        Self { header, rows: Vec::new() }
    }

    /// Appends a row (must match the header width).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders the table with padded columns and a separator line.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        if cols == 0 {
            return String::new();
        }
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, &w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a metric to two decimals (Table III style).
pub fn m2(v: f64) -> String {
    format!("{v:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1.00".into()]);
        t.row(vec!["longer-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a  "));
        assert!(lines[3].starts_with("longer-name"));
    }

    #[test]
    fn m2_formats_two_decimals() {
        assert_eq!(m2(0.5), "0.50");
        assert_eq!(m2(-547.54321), "-547.54");
    }

    #[test]
    fn zero_column_table_renders_empty() {
        assert_eq!(Table::new(&[]).render(), "");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn wrong_width_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["x".into()]);
    }
}
