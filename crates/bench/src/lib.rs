//! # sad-bench
//!
//! The experiment harness regenerating every table and figure of the paper
//! (see DESIGN.md's experiment index):
//!
//! | Binary | Paper artifact |
//! |---|---|
//! | `table1_combinations` | Table I — the 26 evaluated combinations |
//! | `table2_ops` | Table II — μ/σ-Change vs KSWIN operation counts |
//! | `table3_results` | Table III — 26 algorithms × 3 corpora × 5 metrics |
//! | `fig1_finetune` | Figure 1 — fine-tune vs frozen after drift |
//! | `ablation_drift_agreement` | §V-B claim: μ/σ ≈ KSWIN triggers |
//! | `ablation_task1` | §V-B claim: ARES helps |
//!
//! Criterion micro-benches live in `benches/`. The [`eval`] module holds
//! the shared corpus-evaluation loop; [`fmt`] the plain-text table printer.

pub mod eval;
pub mod fmt;
pub mod grid;
pub mod parallel;
pub mod timing;

pub use eval::{
    evaluate_spec, evaluate_spec_scorers, evaluate_tree, harness_params, EvalRow, GroupEval,
    HarnessScale, TreeEval,
};
pub use fmt::Table;
pub use grid::{cell_index, group_index, plan_roots, run_grid, GridDims, GridRun, RootSpec};
pub use parallel::{available_workers, HarnessArgs, JobPool, JobReport};
pub use timing::{CellTiming, GroupTiming, RootTiming, TimingArtifact};
