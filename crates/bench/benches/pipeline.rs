//! End-to-end pipeline throughput: steady-state steps/second of a full
//! detector (model + strategy + drift + scorer) for one representative
//! algorithm per model family — the numbers that size the Table III sweep
//! and any real deployment of the framework on an edge device.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sad_core::{paper_algorithms, DetectorConfig, ModelKind};
use sad_models::{build_detector, BuildParams};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let n = 9;
    let config = DetectorConfig {
        window: 20,
        channels: n,
        warmup: 200,
        initial_epochs: 2,
        fine_tune_epochs: 1,
    };
    let params = BuildParams::new(config).with_capacity(40).with_kswin_stride(5);

    let mut group = c.benchmark_group("pipeline_step");
    group.sample_size(20);
    for kind in ModelKind::all() {
        let spec = paper_algorithms()
            .into_iter()
            .find(|s| s.model == kind)
            .expect("every model appears in Table I");
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &spec, |b, &spec| {
            let mut det = build_detector(spec, &params);
            // Warm up past the training phase.
            let mut t = 0usize;
            while !det.is_warmed_up() {
                let s: Vec<f64> = (0..n).map(|j| ((t * 13 + j) as f64 * 0.21).sin()).collect();
                det.step(&s);
                t += 1;
            }
            b.iter(|| {
                let s: Vec<f64> = (0..n).map(|j| ((t * 13 + j) as f64 * 0.21).sin()).collect();
                t += 1;
                black_box(det.step(&s))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
