//! Per-model micro-benches: one `predict` and one `fine_tune` epoch for
//! each of the paper's five models at the harness dimensions. These numbers
//! size the end-to-end throughput expectations of the Table III sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sad_core::{FeatureVector, ModelKind};
use sad_models::{build_model, BuildParams};
use std::hint::black_box;

fn windows(count: usize, w: usize, n: usize) -> Vec<FeatureVector> {
    (0..count)
        .map(|s| {
            let data: Vec<f64> =
                (0..w * n).map(|i| (((s * 61 + i) as f64) * 0.23).sin()).collect();
            FeatureVector::new(data, w, n)
        })
        .collect()
}

fn params(w: usize, n: usize) -> BuildParams {
    let config = sad_core::DetectorConfig {
        window: w,
        channels: n,
        warmup: 10 * w,
        initial_epochs: 1,
        fine_tune_epochs: 1,
    };
    BuildParams::new(config).with_capacity(40)
}

fn bench_models(c: &mut Criterion) {
    let (w, n) = (20usize, 9usize);
    let train = windows(40, w, n);

    let mut group = c.benchmark_group("model_predict");
    group.sample_size(20);
    for kind in ModelKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            let mut model = build_model(kind, &params(w, n));
            model.fit_initial(&train, 1);
            let x = &train[20];
            b.iter(|| black_box(model.predict(x)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("model_fine_tune_epoch");
    group.sample_size(10);
    for kind in ModelKind::all() {
        group.bench_with_input(BenchmarkId::from_parameter(kind.label()), &kind, |b, &kind| {
            let mut model = build_model(kind, &params(w, n));
            model.fit_initial(&train, 1);
            b.iter(|| model.fine_tune(black_box(&train)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
