//! Micro-benchmarks for the dense tensor kernels behind VAR least squares
//! and the NN layers.
//!
//! The interesting comparison is transpose-free vs transpose-then-multiply
//! on the two shapes the workspace actually hits: square 64×64 products
//! (layer-sized) and tall-skinny 256×64 normal equations (a VAR refit on a
//! w=256 window). `matmul_transpose_a(A, A)` computes `A^T A` with rank-1
//! row sweeps and no transpose allocation; the baseline pays an
//! `O(rows·cols)` strided copy first.
//!
//! ```sh
//! cargo bench -p sad-bench --bench tensor
//! ```

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sad_tensor::{least_squares, Matrix};
use std::hint::black_box;

/// Deterministic dense test matrix (no RNG dependency in the bench).
fn dense(rows: usize, cols: usize, salt: u64) -> Matrix {
    let mut state = salt.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    Matrix::from_fn(rows, cols, |_, _| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    })
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let n = 64usize;
    let a = dense(n, n, 1);
    let b = dense(n, n, 2);
    group.bench_with_input(BenchmarkId::new("ikj", format!("{n}x{n}")), &n, |bch, _| {
        bch.iter(|| black_box(&a).matmul(black_box(&b)))
    });
    group.finish();
}

fn bench_transpose_a(c: &mut Criterion) {
    let mut group = c.benchmark_group("normal_equations");
    // Tall-skinny regressor: 256 window rows x 64 lagged features.
    for &(rows, cols) in &[(64usize, 64usize), (256, 64)] {
        let a = dense(rows, cols, 3);
        let id = format!("{rows}x{cols}");
        group.bench_with_input(
            BenchmarkId::new("transpose_then_matmul", &id),
            &rows,
            |bch, _| bch.iter(|| black_box(&a).transpose().matmul(black_box(&a))),
        );
        group.bench_with_input(BenchmarkId::new("matmul_transpose_a", &id), &rows, |bch, _| {
            bch.iter(|| black_box(&a).matmul_transpose_a(black_box(&a)))
        });
    }
    group.finish();
}

fn bench_transpose_b(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul_transpose_b");
    for &(rows, cols) in &[(64usize, 64usize), (256, 64)] {
        let a = dense(rows, cols, 4);
        let b = dense(rows, cols, 5);
        let id = format!("{rows}x{cols}");
        group.bench_with_input(BenchmarkId::new("matmul_of_transpose", &id), &rows, |bch, _| {
            bch.iter(|| black_box(&a).matmul(&black_box(&b).transpose()))
        });
        group.bench_with_input(BenchmarkId::new("row_dot_kernel", &id), &rows, |bch, _| {
            bch.iter(|| black_box(&a).matmul_transpose_b(black_box(&b)))
        });
    }
    group.finish();
}

/// f32 mirror of [`dense`].
fn dense_f32(rows: usize, cols: usize, salt: u64) -> Matrix<f32> {
    Matrix::from_precision(&dense(rows, cols, salt))
}

/// The precision comparison on the serving GEMM (`matmul_transpose_b` is
/// what both the f64 inference workspace and the f32 inference plans run):
/// identical shapes, f64 pinned kernel vs f32 8-lane kernel. The f32 rows
/// stream half the bytes per element — at memory-bound shapes that is the
/// whole win the fleet's `--f32-infer` mode banks on.
fn bench_precision(c: &mut Criterion) {
    let mut group = c.benchmark_group("gemm_precision");
    for &(rows, cols) in &[(64usize, 64usize), (256, 64)] {
        let id = format!("{rows}x{cols}");
        let a64 = dense(rows, cols, 8);
        let b64 = dense(rows, cols, 9);
        let mut out64 = Matrix::<f64>::zeros(rows, rows);
        group.bench_with_input(BenchmarkId::new("f64_tiled", &id), &rows, |bch, _| {
            bch.iter(|| black_box(&a64).matmul_transpose_b_into(black_box(&b64), &mut out64))
        });
        let a32 = dense_f32(rows, cols, 8);
        let b32 = dense_f32(rows, cols, 9);
        let mut out32 = Matrix::<f32>::zeros(rows, rows);
        group.bench_with_input(BenchmarkId::new("f32_tiled", &id), &rows, |bch, _| {
            bch.iter(|| black_box(&a32).matmul_transpose_b_into(black_box(&b32), &mut out32))
        });
    }
    group.finish();
}

/// Tiled vs legacy (naive triple-loop, single accumulator) product — the
/// tiling win in isolation, same precision on both sides.
fn bench_tiled_vs_legacy(c: &mut Criterion) {
    fn naive_matmul(a: &Matrix<f64>, b: &Matrix<f64>, out: &mut Matrix<f64>) {
        let (m, kk) = a.shape();
        let n = b.cols();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for k in 0..kk {
                    acc += a.row(i)[k] * b.row(k)[j];
                }
                out.row_mut(i)[j] = acc;
            }
        }
    }
    let mut group = c.benchmark_group("matmul_tiling");
    let n = 64usize;
    let a = dense(n, n, 10);
    let b = dense(n, n, 11);
    let mut out = Matrix::<f64>::zeros(n, n);
    group.bench_with_input(BenchmarkId::new("legacy_naive_ijk", format!("{n}x{n}")), &n, |bch, _| {
        bch.iter(|| naive_matmul(black_box(&a), black_box(&b), &mut out))
    });
    group.bench_with_input(BenchmarkId::new("tiled_ikj", format!("{n}x{n}")), &n, |bch, _| {
        bch.iter(|| black_box(&a).matmul_into(black_box(&b), &mut out))
    });
    group.finish();
}

/// Register-blocked panel kernel vs the per-element pinned dot loop on the
/// AE serving GEMM (`X(B×180) · Wᵀ(45×180)`) at serving batch sizes. The
/// dot loop is the pre-micro-kernel serving path; under `simd` the
/// dispatched `matmul_transpose_b_into` runs the 2×4 AVX2 panel instead
/// (bitwise-identical output, asserted in `precision_parity`).
fn bench_gemm_microkernel(c: &mut Criterion) {
    fn dot_loop_gemm<T: sad_tensor::Scalar>(a: &Matrix<T>, b: &Matrix<T>, out: &mut Matrix<T>) {
        for i in 0..a.rows() {
            let ar = a.row(i);
            let or = out.row_mut(i);
            for (j, o) in or.iter_mut().enumerate().take(b.rows()) {
                *o = T::dot(ar, b.row(j));
            }
        }
    }
    let mut group = c.benchmark_group("gemm_microkernel");
    let (n, k) = (45usize, 180usize);
    for &batch in &[1usize, 8, 16, 64] {
        let id = format!("b{batch}_{k}x{n}");
        let a64 = dense(batch, k, 12);
        let b64 = dense(n, k, 13);
        let mut out64 = Matrix::<f64>::zeros(batch, n);
        group.bench_with_input(BenchmarkId::new("f64_dot_loop", &id), &batch, |bch, _| {
            bch.iter(|| dot_loop_gemm(black_box(&a64), black_box(&b64), &mut out64))
        });
        group.bench_with_input(BenchmarkId::new("f64_dispatched", &id), &batch, |bch, _| {
            bch.iter(|| black_box(&a64).matmul_transpose_b_into(black_box(&b64), &mut out64))
        });
        let a32 = dense_f32(batch, k, 12);
        let b32 = dense_f32(n, k, 13);
        let mut out32 = Matrix::<f32>::zeros(batch, n);
        group.bench_with_input(BenchmarkId::new("f32_dot_loop", &id), &batch, |bch, _| {
            bch.iter(|| dot_loop_gemm(black_box(&a32), black_box(&b32), &mut out32))
        });
        group.bench_with_input(BenchmarkId::new("f32_dispatched", &id), &batch, |bch, _| {
            bch.iter(|| black_box(&a32).matmul_transpose_b_into(black_box(&b32), &mut out32))
        });
    }
    group.finish();
}

fn bench_least_squares(c: &mut Criterion) {
    let mut group = c.benchmark_group("least_squares");
    // The VAR(3) refit shape on a 9-channel corpus: K = 1 + 3*9 = 28.
    let a = dense(256, 28, 6);
    let b = dense(256, 9, 7);
    group.bench_function("var_refit_256x28", |bch| {
        bch.iter(|| least_squares(black_box(&a), black_box(&b), 1e-6).unwrap())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_matmul,
    bench_transpose_a,
    bench_transpose_b,
    bench_precision,
    bench_tiled_vs_legacy,
    bench_gemm_microkernel,
    bench_least_squares
);
criterion_main!(benches);
