//! PCB-iForest micro-benches: forest construction, ensemble scoring with
//! counter updates, and the drift rebuild — the model-side costs behind the
//! PCB-iForest rows of Table III.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sad_forest::{ExtendedIsolationForest, PcbIForest};
use std::hint::black_box;

fn points(count: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count).map(|_| (0..dim).map(|_| rng.random_range(-1.0..1.0)).collect()).collect()
}

fn bench_forest(c: &mut Criterion) {
    let mut group = c.benchmark_group("forest");
    group.sample_size(20);
    for &dim in &[9usize, 38] {
        let data = points(512, dim, 3);
        group.bench_with_input(BenchmarkId::new("fit_100_trees", dim), &dim, |b, _| {
            let mut rng = StdRng::seed_from_u64(9);
            b.iter(|| {
                black_box(ExtendedIsolationForest::fit(&data, 100, 256, &mut rng));
            });
        });
        group.bench_with_input(BenchmarkId::new("score_and_update", dim), &dim, |b, _| {
            let mut rng = StdRng::seed_from_u64(9);
            let mut pcb = PcbIForest::fit(&data, 100, 256, 0.5, &mut rng);
            let query = &data[7];
            b.iter(|| black_box(pcb.score_and_update(query)));
        });
        group.bench_with_input(BenchmarkId::new("rebuild_on_drift", dim), &dim, |b, _| {
            let mut rng = StdRng::seed_from_u64(9);
            let drifted = points(512, dim, 4);
            b.iter(|| {
                let mut pcb = PcbIForest::fit(&data, 50, 128, 0.5, &mut rng);
                for p in drifted.iter().take(50) {
                    pcb.score_and_update(p);
                }
                black_box(pcb.rebuild_on_drift(&drifted, &mut rng))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forest);
criterion_main!(benches);
