//! Frame-codec micro-benches: per-frame encode/decode cost of the binary
//! wire format against the CSV text fallback, at the replica-fleet width
//! (38 channels) and the single-channel floor. The binary codec is
//! `memcpy`-shaped (length check + bit-pattern copies); CSV pays float
//! formatting one way and float parsing the other — the measured gap is
//! the price of a printable wire.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sad_ingest::{
    encode_csv_line_into, encode_frame_into, CsvTransport, Frame, FramedTransport, Transport,
};
use std::hint::black_box;
use std::io::Cursor;

fn values(channels: usize) -> Vec<f64> {
    (0..channels).map(|c| (c as f64 * 0.37).sin() * (1.0 + c as f64 * 0.1) + c as f64).collect()
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec/encode");
    for channels in [1usize, 38] {
        let vals = values(channels);
        let mut buf = Vec::with_capacity(16 + 8 * channels);
        group.bench_function(BenchmarkId::new("binary", channels), |b| {
            b.iter(|| {
                buf.clear();
                encode_frame_into(black_box(7), black_box(&vals), &mut buf);
                black_box(buf.len())
            });
        });
        let mut line = String::with_capacity(32 * channels);
        group.bench_function(BenchmarkId::new("csv", channels), |b| {
            b.iter(|| {
                line.clear();
                encode_csv_line_into(black_box(7), black_box(&vals), &mut line);
                black_box(line.len())
            });
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("frame_codec/decode");
    // A long pre-encoded wire per framing; each iteration decodes one
    // frame, rewinding at the end so the transport's reusable buffers
    // stay warm (the steady state the zero-alloc guard pins).
    const FRAMES: usize = 4096;
    for channels in [1usize, 38] {
        let vals = values(channels);
        let mut wire = Vec::new();
        for _ in 0..FRAMES {
            encode_frame_into(7, &vals, &mut wire);
        }
        let mut transport = FramedTransport::new(Cursor::new(wire));
        let mut frame = Frame::default();
        let mut served = 0usize;
        group.bench_function(BenchmarkId::new("binary", channels), |b| {
            b.iter(|| {
                if served == FRAMES {
                    // Rewind without reallocating the transport.
                    served = 0;
                    let mut fresh = FramedTransport::new(Cursor::new(Vec::new()));
                    std::mem::swap(&mut transport, &mut fresh);
                    let mut cursor = fresh.into_inner();
                    cursor.set_position(0);
                    transport = FramedTransport::new(cursor);
                }
                assert!(transport.next(&mut frame).expect("well-formed wire"));
                served += 1;
                black_box(frame.values.len())
            });
        });

        let mut text = String::new();
        for _ in 0..FRAMES {
            encode_csv_line_into(7, &vals, &mut text);
        }
        let mut transport = CsvTransport::new(Cursor::new(text.into_bytes()));
        let mut served = 0usize;
        group.bench_function(BenchmarkId::new("csv", channels), |b| {
            b.iter(|| {
                if served == FRAMES {
                    served = 0;
                    let mut fresh = CsvTransport::new(Cursor::new(Vec::new()));
                    std::mem::swap(&mut transport, &mut fresh);
                    let mut cursor = fresh.into_inner();
                    cursor.set_position(0);
                    transport = CsvTransport::new(cursor);
                }
                assert!(transport.next(&mut frame).expect("well-formed wire"));
                served += 1;
                black_box(frame.values.len())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_encode, bench_decode);
criterion_main!(benches);
