//! Micro-benches of the `sad-nn` training substrate: the legacy per-sample
//! path (forward cache + flat optimizer round-trip, kept as a compat API)
//! against the batched, workspace-backed zero-allocation path at several
//! minibatch sizes.
//!
//! The `batch=1` row quantifies what killing the per-step allocations is
//! worth on its own (identical arithmetic, identical trajectory); larger
//! batches add the GEMM-shaped weight-gradient kernels on top.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sad_nn::{Activation, Mlp};
use sad_tensor::Adam;
use std::hint::black_box;

/// Harness-shaped AE dimensions (Table III quick profile: w=20, N=9 →
/// dim 180, hidden 45).
const DIM: usize = 180;
const HIDDEN: usize = 45;
const SAMPLES: usize = 40;

fn net() -> Mlp {
    let mut rng = StdRng::seed_from_u64(9);
    Mlp::new(&[DIM, HIDDEN, DIM], &[Activation::Sigmoid, Activation::Identity], &mut rng)
}

fn data() -> Vec<Vec<f64>> {
    (0..SAMPLES)
        .map(|k| (0..DIM).map(|i| (((k * 61 + i) as f64) * 0.23).sin()).collect())
        .collect()
}

fn bench_training_paths(c: &mut Criterion) {
    let train = data();

    let mut group = c.benchmark_group("nn_train_epoch");
    group.sample_size(20);

    // Legacy per-sample path: heap-allocated caches, flat-gradient Vec and
    // params_flat round-trip per step.
    group.bench_function("per_sample_compat", |b| {
        let mut net = net();
        let mut opt = Adam::new(1e-3);
        b.iter(|| {
            for x in &train {
                net.train_step_mse(black_box(x), x, &mut opt);
            }
        });
    });

    // Batched workspace path. batch=1 is the drop-in replacement the
    // models default to (bitwise-identical trajectory, zero allocations).
    for batch in [1usize, 4, 8, 16] {
        group.bench_with_input(BenchmarkId::new("workspace", batch), &batch, |b, &batch| {
            let mut net = net();
            let mut ws = net.workspace(batch);
            let mut grads = net.zero_grads();
            let mut opt = Adam::new(1e-3);
            b.iter(|| {
                for chunk in train.chunks(batch) {
                    ws.set_batch(chunk.len());
                    for (i, x) in chunk.iter().enumerate() {
                        ws.input_row_mut(i).copy_from_slice(black_box(x));
                    }
                    net.train_batch_mse_identity(&mut ws, &mut grads, &mut opt);
                }
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("nn_forward");
    group.sample_size(30);
    group.bench_function("infer_per_sample", |b| {
        let net = net();
        b.iter(|| {
            for x in &train {
                black_box(net.infer(black_box(x)));
            }
        });
    });
    group.bench_function("forward_batch_8", |b| {
        let net = net();
        let mut ws = net.workspace(8);
        b.iter(|| {
            for chunk in train.chunks(8) {
                ws.set_batch(chunk.len());
                for (i, x) in chunk.iter().enumerate() {
                    ws.input_row_mut(i).copy_from_slice(black_box(x));
                }
                net.forward_batch(&mut ws);
                black_box(ws.output());
            }
        });
    });
    // The f32 inference plan on the same batch shape — what the fleet's
    // `--f32-infer` snapshot path runs per cohort round. Same structure
    // (one X·Wᵀ GEMM per layer), half the bytes streamed per weight.
    group.bench_function("infer_plan_forward_batch_8", |b| {
        let net = net();
        let plan = net.infer_plan();
        let mut ws = plan.workspace(8);
        b.iter(|| {
            for chunk in train.chunks(8) {
                ws.set_batch(chunk.len());
                for (i, x) in chunk.iter().enumerate() {
                    for (o, &v) in ws.input_row_mut(i).iter_mut().zip(black_box(x)) {
                        *o = v as f32;
                    }
                }
                plan.forward_batch(&mut ws);
                black_box(ws.output());
            }
        });
    });
    group.finish();
}

criterion_group!(benches, bench_training_paths);
criterion_main!(benches);
