//! Shared-pass scorer fan-out vs legacy per-scorer evaluation.
//!
//! Measures one `(spec, corpus)` Table III group evaluated two ways:
//!
//! * `shared_pass` — the fan-out path: one detector pass per series, the
//!   nonconformity stream teed through a three-scorer
//!   [`sad_core::ScorerBank`] (what [`sad_bench::run_grid`] schedules).
//! * `per_scorer` — the pre-fan-out protocol: three independent detector
//!   passes, one per scorer.
//!
//! The ratio is the tentpole speedup of the fan-out refactor (~3× for
//! scorer-feedback-free groups, which are 24 of 26 Table I specs ×
//! corpora). An ARES group is measured too: it shares only the warm-up,
//! so its ratio is bounded by the warm-up share of the series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sad_bench::{evaluate_spec_scorers, evaluate_tree};
use sad_core::{paper_algorithms, AlgorithmSpec, DetectorConfig, ModelKind, ScoreKind, Task1, Task2};
use sad_data::{daphnet_like, CorpusParams};
use sad_models::BuildParams;
use std::hint::black_box;

const SCORERS: [ScoreKind; 3] =
    [ScoreKind::Raw, ScoreKind::Average, ScoreKind::AnomalyLikelihood];

fn bench_group(c: &mut Criterion) {
    let cp = CorpusParams { length: 900, n_series: 1, anomalies_per_series: 2, with_drift: true };
    let corpus = daphnet_like(42, cp);
    let config = DetectorConfig {
        window: 20,
        channels: corpus.series[0].channels(),
        warmup: 300,
        initial_epochs: 2,
        fine_tune_epochs: 1,
    };
    let params = BuildParams::new(config).with_capacity(40).with_kswin_stride(5);

    // One cheap feedback-free spec (shared pass) and its ARES sibling
    // (warm-up share only).
    let shared_spec = paper_algorithms()
        .into_iter()
        .find(|s| s.model == ModelKind::OnlineArima && s.task1 == Task1::SlidingWindow)
        .expect("ARIMA/SW is in Table I");
    let ares_spec = paper_algorithms()
        .into_iter()
        .find(|s| s.model == ModelKind::OnlineArima && s.task1 == Task1::AnomalyAwareReservoir)
        .expect("ARIMA/ARES is in Table I");

    let mut group = c.benchmark_group("table3_group");
    group.sample_size(10);
    for (name, spec) in [("shared_pass/ARIMA-SW", shared_spec), ("warmup_share/ARIMA-ARES", ares_spec)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, &spec| {
            b.iter(|| black_box(evaluate_spec_scorers(spec, &params, &corpus, &SCORERS)));
        });
    }
    // The pre-fan-out protocol for the same group: three independent
    // single-scorer evaluations (each one is itself the fan-out of a
    // single scorer, i.e. exactly one detector pass per scorer).
    group.bench_with_input(
        BenchmarkId::from_parameter("per_scorer/ARIMA-SW"),
        &shared_spec,
        |b, &spec| {
            b.iter(|| {
                for &kind in &SCORERS {
                    black_box(evaluate_spec_scorers(spec, &params, &corpus, &[kind]));
                }
            });
        },
    );
    group.finish();
}

/// Shared-prefix tree root vs two independent warm-ups.
///
/// Measures one `(model, SW)` drift-variant pair evaluated two ways:
///
/// * `shared_fit_fork` — the tree path: one warm-up + one `fit_initial`,
///   forked into the μ/σ and KSWIN arms (what [`sad_bench::run_grid`]
///   schedules per root since the shared-prefix tree).
/// * `independent_refit` — the pre-tree protocol: each variant does its
///   own warm-up + initial fit.
///
/// The ratio is the tentpole speedup of this refactor; it grows with the
/// cost of `fit_initial`, so the AE pair separates further than the
/// ARIMA pair.
fn bench_warmup_fork(c: &mut Criterion) {
    let cp = CorpusParams { length: 900, n_series: 1, anomalies_per_series: 2, with_drift: true };
    let corpus = daphnet_like(42, cp);
    let config = DetectorConfig {
        window: 20,
        channels: corpus.series[0].channels(),
        warmup: 300,
        initial_epochs: 2,
        fine_tune_epochs: 1,
    };
    let params = BuildParams::new(config).with_capacity(40).with_kswin_stride(5);
    let task2s = [Task2::MuSigma, Task2::Kswin];

    let mut group = c.benchmark_group("warmup_fork_vs_refit");
    group.sample_size(10);
    for (name, model) in [("ARIMA-SW", ModelKind::OnlineArima), ("AE-SW", ModelKind::TwoLayerAe)] {
        group.bench_with_input(BenchmarkId::new("shared_fit_fork", name), &model, |b, &model| {
            b.iter(|| {
                black_box(evaluate_tree(
                    model,
                    Task1::SlidingWindow,
                    &task2s,
                    &params,
                    &corpus,
                    &SCORERS,
                ))
            });
        });
        group.bench_with_input(BenchmarkId::new("independent_refit", name), &model, |b, &model| {
            b.iter(|| {
                for &task2 in &task2s {
                    let spec = AlgorithmSpec { model, task1: Task1::SlidingWindow, task2 };
                    black_box(evaluate_spec_scorers(spec, &params, &corpus, &SCORERS));
                }
            });
        });
    }
    group.finish();
}

/// kNN k-th-neighbour query: per-point scalar distances vs the packed
/// snapshot sweep.
///
/// * `per_point` — the frozen legacy path
///   ([`sad_models::KnnDistanceModel::kth_distance_of`]): one sequential
///   squared-difference sum per reference vector.
/// * `snapshot_sweep` — the offline-scoring path: the reference set packed
///   transposed into a contiguous matrix at training time, every query
///   answered by a feature-major `sq_dist_accum` sweep + quickselect
///   (bitwise-equal to `per_point`, pinned in `knn_snapshot_parity`).
///
/// Shapes use the Table III quick-profile feature dim (w·N = 180) at two
/// reference-set sizes bracketing the SW/reservoir capacities.
fn bench_knn_sweep(c: &mut Criterion) {
    use sad_core::{FeatureVector, StreamModel};
    use sad_models::KnnDistanceModel;

    let dim = 180usize;
    let k = 5usize;
    let mut state = 0x0005_1ee7_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0
    };
    let mut group = c.benchmark_group("knn_sweep");
    for &m in &[40usize, 200] {
        let refs: Vec<FeatureVector> =
            (0..m).map(|_| FeatureVector::new((0..dim).map(|_| next()).collect(), dim, 1)).collect();
        let query = FeatureVector::new((0..dim).map(|_| next()).collect(), dim, 1);
        let mut model = KnnDistanceModel::new(k);
        model.fine_tune(&refs);
        let id = format!("m{m}_dim{dim}");
        group.bench_with_input(BenchmarkId::new("per_point", &id), &m, |b, _| {
            b.iter(|| {
                black_box(KnnDistanceModel::kth_distance_of(k, black_box(&query), &refs))
            });
        });
        group.bench_with_input(BenchmarkId::new("snapshot_sweep", &id), &m, |b, _| {
            b.iter(|| black_box(model.snapshot_kth_distance(k, black_box(&query))));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_group, bench_warmup_fork, bench_knn_sweep);
criterion_main!(benches);
