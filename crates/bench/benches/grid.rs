//! Shared-pass scorer fan-out vs legacy per-scorer evaluation.
//!
//! Measures one `(spec, corpus)` Table III group evaluated two ways:
//!
//! * `shared_pass` — the fan-out path: one detector pass per series, the
//!   nonconformity stream teed through a three-scorer
//!   [`sad_core::ScorerBank`] (what [`sad_bench::run_grid`] schedules).
//! * `per_scorer` — the pre-fan-out protocol: three independent detector
//!   passes, one per scorer.
//!
//! The ratio is the tentpole speedup of the fan-out refactor (~3× for
//! scorer-feedback-free groups, which are 24 of 26 Table I specs ×
//! corpora). An ARES group is measured too: it shares only the warm-up,
//! so its ratio is bounded by the warm-up share of the series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sad_bench::evaluate_spec_scorers;
use sad_core::{paper_algorithms, DetectorConfig, ModelKind, ScoreKind, Task1};
use sad_data::{daphnet_like, CorpusParams};
use sad_models::BuildParams;
use std::hint::black_box;

const SCORERS: [ScoreKind; 3] =
    [ScoreKind::Raw, ScoreKind::Average, ScoreKind::AnomalyLikelihood];

fn bench_group(c: &mut Criterion) {
    let cp = CorpusParams { length: 900, n_series: 1, anomalies_per_series: 2, with_drift: true };
    let corpus = daphnet_like(42, cp);
    let config = DetectorConfig {
        window: 20,
        channels: corpus.series[0].channels(),
        warmup: 300,
        initial_epochs: 2,
        fine_tune_epochs: 1,
    };
    let params = BuildParams::new(config).with_capacity(40).with_kswin_stride(5);

    // One cheap feedback-free spec (shared pass) and its ARES sibling
    // (warm-up share only).
    let shared_spec = paper_algorithms()
        .into_iter()
        .find(|s| s.model == ModelKind::OnlineArima && s.task1 == Task1::SlidingWindow)
        .expect("ARIMA/SW is in Table I");
    let ares_spec = paper_algorithms()
        .into_iter()
        .find(|s| s.model == ModelKind::OnlineArima && s.task1 == Task1::AnomalyAwareReservoir)
        .expect("ARIMA/ARES is in Table I");

    let mut group = c.benchmark_group("table3_group");
    group.sample_size(10);
    for (name, spec) in [("shared_pass/ARIMA-SW", shared_spec), ("warmup_share/ARIMA-ARES", ares_spec)]
    {
        group.bench_with_input(BenchmarkId::from_parameter(name), &spec, |b, &spec| {
            b.iter(|| black_box(evaluate_spec_scorers(spec, &params, &corpus, &SCORERS)));
        });
    }
    // The pre-fan-out protocol for the same group: three independent
    // single-scorer evaluations (each one is itself the fan-out of a
    // single scorer, i.e. exactly one detector pass per scorer).
    group.bench_with_input(
        BenchmarkId::from_parameter("per_scorer/ARIMA-SW"),
        &shared_spec,
        |b, &spec| {
            b.iter(|| {
                for &kind in &SCORERS {
                    black_box(evaluate_spec_scorers(spec, &params, &corpus, &[kind]));
                }
            });
        },
    );
    group.finish();
}

criterion_group!(benches, bench_group);
criterion_main!(benches);
