//! Task-1 strategy micro-benches: per-step training-set update cost for
//! SW / URES / ARES (the framework's only per-step bookkeeping besides the
//! drift detectors).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sad_core::{
    AnomalyAwareReservoir, FeatureVector, SlidingWindowSet, TrainingSetStrategy, UniformReservoir,
};
use std::hint::black_box;

type StrategyCtor = Box<dyn Fn() -> Box<dyn TrainingSetStrategy>>;

fn window(t: usize, dim: usize) -> FeatureVector {
    let data: Vec<f64> = (0..dim).map(|i| (((t * 17 + i) as f64) * 0.31).sin()).collect();
    FeatureVector::new(data, dim, 1)
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("task1_update");
    let dim = 200; // w=25, N=8 equivalent
    let m = 50;
    let make: Vec<(&str, StrategyCtor)> = vec![
        ("SW", Box::new(move || Box::new(SlidingWindowSet::new(m)))),
        ("URES", Box::new(move || Box::new(UniformReservoir::new(m, 1)))),
        ("ARES", Box::new(move || Box::new(AnomalyAwareReservoir::new(m, 1)))),
    ];
    for (name, ctor) in &make {
        group.bench_with_input(BenchmarkId::from_parameter(name), name, |b, _| {
            let mut strat = ctor();
            // Pre-fill to steady state.
            for t in 0..m {
                strat.update(&window(t, dim), 0.1);
            }
            let mut t = m;
            b.iter(|| {
                let x = window(t, dim);
                t += 1;
                black_box(strat.update(&x, (t % 10) as f64 / 10.0))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_strategies);
criterion_main!(benches);
