//! Criterion micro-bench behind **Table II**: per-step wall-clock cost of
//! the two Task-2 drift strategies across the paper's corpus dimensions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sad_core::{
    DriftDetector, FeatureVector, KswinDetector, MuSigmaChange, SlidingWindowSet,
    TrainingSetStrategy,
};
use std::hint::black_box;

fn window(t: usize, n: usize, w: usize) -> FeatureVector {
    let data: Vec<f64> = (0..w * n).map(|i| (((t * 131 + i) as f64) * 0.37).sin()).collect();
    FeatureVector::new(data, w, n)
}

/// Pre-fills a sliding-window strategy + detector pair and returns them
/// ready for steady-state stepping.
fn warmed(det: &mut dyn DriftDetector, n: usize, w: usize, m: usize) -> SlidingWindowSet {
    let mut strat = SlidingWindowSet::new(m);
    for t in 0..m {
        let x = window(t, n, w);
        let update = strat.update(&x, 0.0);
        det.observe(&x, &update, strat.training_set());
    }
    det.on_fine_tune(strat.training_set());
    strat
}

fn bench_drift(c: &mut Criterion) {
    let mut group = c.benchmark_group("drift_per_step");
    group.sample_size(20);
    // (N, w, m): the three corpora at a harness-scale window plus the paper
    // w=100 shape for the 9-channel case.
    for &(n, w, m) in &[(9usize, 25usize, 40usize), (19, 25, 40), (38, 25, 40), (9, 100, 50)] {
        group.bench_with_input(
            BenchmarkId::new("mu_sigma", format!("N{n}_w{w}_m{m}")),
            &(n, w, m),
            |b, &(n, w, m)| {
                let mut det = MuSigmaChange::new();
                let mut strat = warmed(&mut det, n, w, m);
                let mut t = m;
                b.iter(|| {
                    let x = window(t, n, w);
                    t += 1;
                    let update = strat.update(&x, 0.0);
                    black_box(det.observe(&x, &update, strat.training_set()))
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("kswin", format!("N{n}_w{w}_m{m}")),
            &(n, w, m),
            |b, &(n, w, m)| {
                let mut det = KswinDetector::new(0.01);
                let mut strat = warmed(&mut det, n, w, m);
                let mut t = m;
                b.iter(|| {
                    let x = window(t, n, w);
                    t += 1;
                    let update = strat.update(&x, 0.0);
                    black_box(det.observe(&x, &update, strat.training_set()))
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_drift);
criterion_main!(benches);
