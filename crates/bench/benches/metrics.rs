//! Metric-suite micro-benches: cost of the five paper metrics on a
//! corpus-sized score stream. VUS is the expensive one (threshold sweep ×
//! buffer sweep), which matters when Table III evaluates 78 runs.

use criterion::{criterion_group, criterion_main, Criterion};
use sad_metrics::{best_f1, nab_score, pr_auc, vus_pr};
use std::hint::black_box;

fn scores_and_labels(len: usize) -> (Vec<f64>, Vec<bool>) {
    let labels: Vec<bool> = (0..len).map(|t| (t / 100) % 9 == 4 && t % 100 < 30).collect();
    let scores: Vec<f64> = labels
        .iter()
        .enumerate()
        .map(|(t, &l)| {
            let noise = ((t * 2654435761) % 1000) as f64 / 5000.0;
            if l {
                0.6 + noise
            } else {
                0.2 + noise
            }
        })
        .collect();
    (scores, labels)
}

fn bench_metrics(c: &mut Criterion) {
    let (scores, labels) = scores_and_labels(10_000);
    let mut group = c.benchmark_group("metrics_10k");
    group.sample_size(20);
    group.bench_function("pr_auc", |b| {
        b.iter(|| black_box(pr_auc(&scores, &labels, 40)));
    });
    group.bench_function("best_f1", |b| {
        b.iter(|| black_box(best_f1(&scores, &labels, 40)));
    });
    group.bench_function("vus_pr_buffer20", |b| {
        b.iter(|| black_box(vus_pr(&scores, &labels, 20, 40)));
    });
    group.bench_function("nab", |b| {
        let pred: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
        b.iter(|| black_box(nab_score(&pred, &labels)));
    });
    group.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
