//! Arithmetic-operation accounting for Table II.
//!
//! The paper's Table II compares the per-step cost of the two Task-2 drift
//! strategies in *mathematical operations* (additions, multiplications,
//! comparisons) as closed forms in the training-set length `m`, the data
//! representation length `w` and the channel count `N`:
//!
//! | | μ/σ-Change | KSWIN |
//! |---|---|---|
//! | Additions | `6Nw` | `2Nmw` |
//! | Multiplications | `2Nw` | `2Nmw` |
//! | Comparisons | `3Nw` | `(1+4m)Nw·log2(mw) + N` |
//!
//! [`OpCount`] is the measured-side counter threaded through the
//! instrumented drift detectors; [`mu_sigma_analytic`] and
//! [`kswin_analytic`] are the paper's closed forms. The `table2_ops` bench
//! binary prints both side by side.

use std::ops::{Add, AddAssign};

/// A tally of additions, multiplications and comparisons.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCount {
    /// Number of additions/subtractions.
    pub additions: u64,
    /// Number of multiplications/divisions.
    pub multiplications: u64,
    /// Number of comparisons (includes binary-search probes).
    pub comparisons: u64,
}

impl OpCount {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total of all operation classes.
    pub fn total(&self) -> u64 {
        self.additions + self.multiplications + self.comparisons
    }
}

impl Add for OpCount {
    type Output = OpCount;
    fn add(self, rhs: OpCount) -> OpCount {
        OpCount {
            additions: self.additions + rhs.additions,
            multiplications: self.multiplications + rhs.multiplications,
            comparisons: self.comparisons + rhs.comparisons,
        }
    }
}

impl AddAssign for OpCount {
    fn add_assign(&mut self, rhs: OpCount) {
        *self = *self + rhs;
    }
}

/// The paper's closed-form per-step cost of the μ/σ-Change strategy
/// (Table II, left column) for channel count `n`, representation length `w`.
pub fn mu_sigma_analytic(n: usize, w: usize) -> OpCount {
    let nw = (n * w) as u64;
    OpCount { additions: 6 * nw, multiplications: 2 * nw, comparisons: 3 * nw }
}

/// The paper's closed-form per-step cost of the KSWIN strategy (Table II,
/// right column) for channel count `n`, representation length `w`, training
/// set length `m`.
pub fn kswin_analytic(n: usize, w: usize, m: usize) -> OpCount {
    let (nf, wf, mf) = (n as f64, w as f64, m as f64);
    let log = (mf * wf).max(2.0).log2();
    OpCount {
        additions: (2.0 * nf * mf * wf) as u64,
        multiplications: (2.0 * nf * mf * wf) as u64,
        comparisons: ((1.0 + 4.0 * mf) * nf * wf * log + nf) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_add_assign() {
        let a = OpCount { additions: 1, multiplications: 2, comparisons: 3 };
        let b = OpCount { additions: 10, multiplications: 20, comparisons: 30 };
        assert_eq!(a + b, OpCount { additions: 11, multiplications: 22, comparisons: 33 });
        let mut c = a;
        c += b;
        assert_eq!(c.total(), 66);
    }

    #[test]
    fn mu_sigma_formula_matches_paper() {
        // N=9, w=100 -> Nw=900: 5400 adds, 1800 muls, 2700 cmps.
        let ops = mu_sigma_analytic(9, 100);
        assert_eq!(ops.additions, 5400);
        assert_eq!(ops.multiplications, 1800);
        assert_eq!(ops.comparisons, 2700);
    }

    #[test]
    fn kswin_formula_matches_paper() {
        let ops = kswin_analytic(9, 100, 50);
        assert_eq!(ops.additions, 2 * 9 * 50 * 100);
        assert_eq!(ops.multiplications, 2 * 9 * 50 * 100);
        let expect = ((1.0 + 4.0 * 50.0) * 9.0 * 100.0 * (5000.0f64).log2() + 9.0) as u64;
        assert_eq!(ops.comparisons, expect);
    }

    #[test]
    fn kswin_dominates_mu_sigma() {
        // The headline claim of Table II: KSWIN costs orders of magnitude
        // more than μ/σ-Change for realistic parameters.
        for &(n, w, m) in &[(9, 100, 50), (19, 100, 50), (38, 100, 50)] {
            let ms = mu_sigma_analytic(n, w);
            let ks = kswin_analytic(n, w, m);
            assert!(ks.total() > 10 * ms.total(), "n={n} w={w} m={m}");
        }
    }
}
