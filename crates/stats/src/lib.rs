//! # sad-stats
//!
//! Streaming statistics substrate for the `streamad` workspace.
//!
//! The paper's two concept-drift detectors are built entirely from the
//! primitives in this crate:
//!
//! * **μ/σ-Change** (paper §IV-B, Task 2) needs a running mean and standard
//!   deviation over a training set that changes by single-element
//!   insert/replace operations — [`running::RunningStats`] and
//!   [`running::VectorRunningStats`] provide exactly the `O(1)` update rules
//!   the paper's Table II counts operations for.
//! * **KSWIN** needs the two-sample Kolmogorov–Smirnov test with the
//!   `c(α)√((r_i+r_t)/(r_i r_t))` critical value — [`ks`].
//!
//! The **anomaly likelihood** score (§IV-E) needs the Gaussian tail function
//! `Q(x)` — [`gaussian`]. [`opcount`] carries the arithmetic-operation
//! bookkeeping used to regenerate Table II, and [`mod@quantile`] provides the
//! order statistics used by evaluation and threshold selection.

pub mod gaussian;
pub mod ks;
pub mod opcount;
pub mod quantile;
pub mod running;

pub use gaussian::{erfc, normal_cdf, normal_pdf, q_function};
pub use ks::{ks_critical_value, ks_statistic, ks_statistic_sorted, ks_test, KsOutcome};
pub use opcount::OpCount;
pub use quantile::{median, quantile};
pub use running::{RunningStats, VectorRunningStats};
