//! Order statistics.
//!
//! The evaluation harness uses quantiles for two jobs: picking detection
//! thresholds (`sad-metrics` sweeps thresholds over score quantiles rather
//! than raw grid points so the PR curve has one point per distinct decision
//! boundary region) and summarizing distributions in the experiment reports.

/// Linear-interpolation quantile (type-7 estimator, the R/NumPy default).
///
/// `q` must be in `[0, 1]`. Returns `None` for an empty slice. Input need
/// not be sorted.
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile fraction must be in [0, 1]");
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(f64::total_cmp);
    Some(quantile_sorted(&sorted, q))
}

/// Quantile over an already sorted slice (ascending).
///
/// # Panics
/// Panics on an empty slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction must be in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median via [`quantile`].
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn extremes_are_min_and_max() {
        let v = [5.0, -1.0, 3.0];
        assert_eq!(quantile(&v, 0.0), Some(-1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
    }

    #[test]
    fn interpolation_matches_numpy() {
        // numpy.quantile([1,2,3,4], 0.25) == 1.75
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.25), Some(1.75));
    }

    #[test]
    fn empty_returns_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_fraction_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Quantiles are monotone in q and bounded by min/max.
            #[test]
            fn monotone_and_bounded(
                values in proptest::collection::vec(-1e3f64..1e3, 1..100),
                qa in 0.0f64..1.0,
                qb in 0.0f64..1.0,
            ) {
                let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
                let vlo = quantile(&values, lo).unwrap();
                let vhi = quantile(&values, hi).unwrap();
                prop_assert!(vlo <= vhi + 1e-12);
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(vlo >= min - 1e-12 && vhi <= max + 1e-12);
            }
        }
    }
}
