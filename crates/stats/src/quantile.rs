//! Order statistics.
//!
//! The evaluation harness uses quantiles for two jobs: picking detection
//! thresholds (`sad-metrics` sweeps thresholds over score quantiles rather
//! than raw grid points so the PR curve has one point per distinct decision
//! boundary region) and summarizing distributions in the experiment reports.

/// Linear-interpolation quantile (type-7 estimator, the R/NumPy default).
///
/// `q` must be in `[0, 1]`. Returns `None` for an empty slice. Input need
/// not be sorted.
///
/// A single-quantile query needs only two order statistics, so this uses
/// `select_nth_unstable_by` (`O(n)` quickselect) instead of a full
/// `O(n log n)` sort. The result is bitwise identical to the sorted path:
/// `total_cmp` equality is bit equality, so the `⌊pos⌋`-th and `⌈pos⌉`-th
/// order statistics are the same values either way. Callers needing many
/// quantiles of one sample should sort once and use [`quantile_sorted`].
pub fn quantile(values: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile fraction must be in [0, 1]");
    if values.is_empty() {
        return None;
    }
    if values.len() == 1 {
        return Some(values[0]);
    }
    let mut scratch = values.to_vec();
    let pos = q * (scratch.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let frac = pos - lo as f64;
    let (_, &mut lo_val, upper) = scratch.select_nth_unstable_by(lo, f64::total_cmp);
    // The `⌈pos⌉`-th order statistic is the minimum of the upper partition
    // (`upper` holds exactly the elements ranked above `lo`). When
    // `frac == 0` the sorted path degenerates to `lo + (lo - lo) * 0`;
    // keep the same arithmetic so even `-0.0` inputs round-trip bitwise.
    let hi_val = if frac == 0.0 {
        lo_val
    } else {
        upper
            .iter()
            .copied()
            .min_by(f64::total_cmp)
            .expect("frac > 0 implies pos < n-1, so the upper partition is non-empty")
    };
    Some(lo_val + (hi_val - lo_val) * frac)
}

/// Quantile over an already sorted slice (ascending).
///
/// # Panics
/// Panics on an empty slice.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile fraction must be in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Median via [`quantile`].
pub fn median(values: &[f64]) -> Option<f64> {
    quantile(values, 0.5)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_odd_and_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), Some(2.5));
    }

    #[test]
    fn extremes_are_min_and_max() {
        let v = [5.0, -1.0, 3.0];
        assert_eq!(quantile(&v, 0.0), Some(-1.0));
        assert_eq!(quantile(&v, 1.0), Some(5.0));
    }

    #[test]
    fn interpolation_matches_numpy() {
        // numpy.quantile([1,2,3,4], 0.25) == 1.75
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.25), Some(1.75));
    }

    #[test]
    fn empty_returns_none() {
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn single_element() {
        assert_eq!(quantile(&[7.0], 0.99), Some(7.0));
    }

    #[test]
    #[should_panic(expected = "must be in [0, 1]")]
    fn out_of_range_fraction_panics() {
        let _ = quantile(&[1.0], 1.5);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Quantiles are monotone in q and bounded by min/max.
            #[test]
            fn monotone_and_bounded(
                values in proptest::collection::vec(-1e3f64..1e3, 1..100),
                qa in 0.0f64..1.0,
                qb in 0.0f64..1.0,
            ) {
                let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
                let vlo = quantile(&values, lo).unwrap();
                let vhi = quantile(&values, hi).unwrap();
                prop_assert!(vlo <= vhi + 1e-12);
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(vlo >= min - 1e-12 && vhi <= max + 1e-12);
            }

            /// The quickselect path is bitwise identical to sorting first
            /// and interpolating over the sorted slice.
            #[test]
            fn selection_matches_sorted_path_bitwise(
                values in proptest::collection::vec(-1e6f64..1e6, 1..200),
                q in 0.0f64..=1.0,
            ) {
                let fast = quantile(&values, q).unwrap();
                let mut sorted = values.clone();
                sorted.sort_by(f64::total_cmp);
                let reference = quantile_sorted(&sorted, q);
                prop_assert_eq!(fast.to_bits(), reference.to_bits());
            }
        }
    }
}
