//! Incrementally maintained mean and variance.
//!
//! The μ/σ-Change drift strategy (paper §IV-B) keeps a running mean of the
//! training set and updates it in `O(1)` per stream step:
//!
//! ```text
//! μ_t = μ_{t-1} + (x_t - x*) / N      (replace x* by x_t, set size fixed)
//! μ_t = ((N-1) μ_{t-1} + x_t) / N     (append x_t, set grows to N)
//! ```
//!
//! [`RunningStats`] implements these update rules for scalars together with
//! the matching second-moment updates; [`VectorRunningStats`] applies them
//! element-wise across feature-vector dimensions, which is exactly the
//! `Nw`-element mean feature vector whose cost Table II tallies.

/// Running mean/variance over a multiset of scalars with `O(1)`
/// insert / remove / replace.
///
/// Internally tracks the count, the sum and the sum of squares. The
/// sum-of-squares form (rather than Welford's) is chosen because the
/// training-set strategies *remove* arbitrary elements (reservoirs) and
/// Welford's recurrence does not support removal; the values seen here are
/// normalized sensor readings, so catastrophic cancellation is not a
/// practical concern (property-tested against batch recomputation).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: usize,
    sum: f64,
    sum_sq: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an accumulator from a batch of values.
    pub fn from_values(values: &[f64]) -> Self {
        let mut s = Self::new();
        for &v in values {
            s.insert(v);
        }
        s
    }

    /// Number of tracked values.
    #[inline]
    pub fn count(&self) -> usize {
        self.n
    }

    /// Adds a value.
    #[inline]
    pub fn insert(&mut self, v: f64) {
        self.n += 1;
        self.sum += v;
        self.sum_sq += v * v;
    }

    /// Removes one occurrence of a value previously inserted.
    ///
    /// # Panics
    /// Panics if the accumulator is empty.
    #[inline]
    pub fn remove(&mut self, v: f64) {
        assert!(self.n > 0, "remove from empty RunningStats");
        self.n -= 1;
        self.sum -= v;
        self.sum_sq -= v * v;
        if self.n == 0 {
            // Snap accumulated rounding error back to exactly zero.
            self.sum = 0.0;
            self.sum_sq = 0.0;
        }
    }

    /// Replaces `old` with `new` — the paper's sliding-window/reservoir
    /// update `μ_t = μ_{t-1} + (x_t - x*)/N`.
    #[inline]
    pub fn replace(&mut self, old: f64, new: f64) {
        assert!(self.n > 0, "replace on empty RunningStats");
        self.sum += new - old;
        self.sum_sq += new * new - old * old;
    }

    /// Current mean (`0.0` when empty).
    #[inline]
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Population variance (`0.0` when empty). Clamped at zero to absorb
    /// floating-point jitter from long insert/remove sequences.
    #[inline]
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.n as f64 - m * m).max(0.0)
    }

    /// Population standard deviation.
    #[inline]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// Element-wise running statistics over fixed-dimension vectors.
///
/// Maintains the mean feature vector `μ_t ∈ R^d` and per-dimension variance
/// of a training set of feature vectors, supporting the same `O(1)`-per-step
/// (i.e. `O(d)` arithmetic) insert/remove/replace updates as
/// [`RunningStats`].
#[derive(Debug, Clone)]
pub struct VectorRunningStats {
    dims: Vec<RunningStats>,
}

impl VectorRunningStats {
    /// Creates an accumulator for `dim`-dimensional vectors.
    pub fn new(dim: usize) -> Self {
        Self { dims: vec![RunningStats::new(); dim] }
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dims.len()
    }

    /// Number of tracked vectors.
    pub fn count(&self) -> usize {
        self.dims.first().map_or(0, RunningStats::count)
    }

    /// Adds a vector.
    ///
    /// # Panics
    /// Panics if `v.len() != self.dim()`.
    pub fn insert(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.dims.len(), "dimension mismatch");
        for (d, &x) in self.dims.iter_mut().zip(v) {
            d.insert(x);
        }
    }

    /// Removes a previously inserted vector.
    pub fn remove(&mut self, v: &[f64]) {
        assert_eq!(v.len(), self.dims.len(), "dimension mismatch");
        for (d, &x) in self.dims.iter_mut().zip(v) {
            d.remove(x);
        }
    }

    /// Replaces `old` with `new` in one pass.
    pub fn replace(&mut self, old: &[f64], new: &[f64]) {
        assert_eq!(old.len(), self.dims.len(), "dimension mismatch");
        assert_eq!(new.len(), self.dims.len(), "dimension mismatch");
        for (d, (&o, &n)) in self.dims.iter_mut().zip(old.iter().zip(new)) {
            d.replace(o, n);
        }
    }

    /// Mean feature vector.
    pub fn mean(&self) -> Vec<f64> {
        self.means().collect()
    }

    /// Per-dimension means as a lazy iterator — the allocation-free
    /// counterpart of [`Self::mean`] for per-step hot paths (each value is
    /// the identical `sum / n` division, so the two are bitwise equal).
    pub fn means(&self) -> impl Iterator<Item = f64> + '_ {
        self.dims.iter().map(RunningStats::mean)
    }

    /// Per-dimension population standard deviation.
    pub fn std_dev(&self) -> Vec<f64> {
        self.dims.iter().map(RunningStats::std_dev).collect()
    }

    /// Average of the per-dimension standard deviations — the scalar `σ_t`
    /// the μ/σ-Change trigger compares against.
    pub fn mean_std_dev(&self) -> f64 {
        if self.dims.is_empty() {
            return 0.0;
        }
        self.dims.iter().map(RunningStats::std_dev).sum::<f64>() / self.dims.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch_mean_var(values: &[f64]) -> (f64, f64) {
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        (mean, var)
    }

    #[test]
    fn insert_matches_batch() {
        let values = [1.0, 2.0, 4.0, 8.0, -3.0];
        let s = RunningStats::from_values(&values);
        let (m, v) = batch_mean_var(&values);
        assert!((s.mean() - m).abs() < 1e-12);
        assert!((s.variance() - v).abs() < 1e-12);
    }

    #[test]
    fn remove_matches_batch() {
        let mut s = RunningStats::from_values(&[1.0, 2.0, 3.0, 4.0]);
        s.remove(2.0);
        let (m, v) = batch_mean_var(&[1.0, 3.0, 4.0]);
        assert!((s.mean() - m).abs() < 1e-12);
        assert!((s.variance() - v).abs() < 1e-12);
    }

    #[test]
    fn replace_equals_remove_then_insert() {
        let mut a = RunningStats::from_values(&[5.0, 7.0, 9.0]);
        let mut b = a.clone();
        a.replace(7.0, 2.0);
        b.remove(7.0);
        b.insert(2.0);
        assert!((a.mean() - b.mean()).abs() < 1e-12);
        assert!((a.variance() - b.variance()).abs() < 1e-12);
        assert_eq!(a.count(), b.count());
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = RunningStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
    }

    #[test]
    fn constant_values_have_zero_variance() {
        let s = RunningStats::from_values(&[3.0; 100]);
        assert!(s.variance().abs() < 1e-12);
    }

    #[test]
    fn drain_to_empty_resets_exactly() {
        let mut s = RunningStats::new();
        s.insert(0.1);
        s.insert(0.2);
        s.remove(0.1);
        s.remove(0.2);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    #[should_panic(expected = "remove from empty")]
    fn remove_from_empty_panics() {
        RunningStats::new().remove(1.0);
    }

    #[test]
    fn vector_stats_mean_and_std() {
        let mut s = VectorRunningStats::new(2);
        s.insert(&[1.0, 10.0]);
        s.insert(&[3.0, 30.0]);
        assert_eq!(s.count(), 2);
        assert_eq!(s.mean(), vec![2.0, 20.0]);
        let sd = s.std_dev();
        assert!((sd[0] - 1.0).abs() < 1e-12);
        assert!((sd[1] - 10.0).abs() < 1e-12);
        assert!((s.mean_std_dev() - 5.5).abs() < 1e-12);
    }

    #[test]
    fn vector_replace_tracks_sliding_window() {
        let mut s = VectorRunningStats::new(1);
        s.insert(&[1.0]);
        s.insert(&[2.0]);
        s.insert(&[3.0]);
        // Slide: drop 1.0, add 4.0 -> window {2,3,4}.
        s.replace(&[1.0], &[4.0]);
        assert!((s.mean()[0] - 3.0).abs() < 1e-12);
        assert_eq!(s.count(), 3);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn vector_dim_mismatch_panics() {
        VectorRunningStats::new(3).insert(&[1.0]);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// After any interleaving of inserts, the running stats match a
            /// batch recomputation to high precision.
            #[test]
            fn running_equals_batch(values in proptest::collection::vec(-1e3f64..1e3, 1..200)) {
                let s = RunningStats::from_values(&values);
                let (m, v) = batch_mean_var(&values);
                prop_assert!((s.mean() - m).abs() < 1e-8);
                prop_assert!((s.variance() - v).abs() < 1e-5);
            }

            /// Replacing every element one by one keeps stats equal to the
            /// batch stats of the final multiset.
            #[test]
            fn replace_chain_equals_batch(
                init in proptest::collection::vec(-100f64..100.0, 5..40),
                updates in proptest::collection::vec(-100f64..100.0, 5..40),
            ) {
                let mut s = RunningStats::from_values(&init);
                let mut current = init.clone();
                for (i, &u) in updates.iter().enumerate() {
                    let idx = i % current.len();
                    s.replace(current[idx], u);
                    current[idx] = u;
                }
                let (m, v) = batch_mean_var(&current);
                prop_assert!((s.mean() - m).abs() < 1e-8);
                prop_assert!((s.variance() - v).abs() < 1e-5);
            }

            /// Variance is never negative, even under adversarial
            /// insert/remove interleavings.
            #[test]
            fn variance_nonnegative(
                values in proptest::collection::vec(-1e6f64..1e6, 2..100),
            ) {
                let mut s = RunningStats::from_values(&values);
                for &v in values.iter().take(values.len() / 2) {
                    s.remove(v);
                }
                prop_assert!(s.variance() >= 0.0);
            }
        }
    }
}
