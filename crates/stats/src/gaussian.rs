//! Gaussian distribution functions.
//!
//! The anomaly-likelihood score (paper §IV-E, after Lavin & Ahmad's Numenta
//! anomaly likelihood) is `f_t = 1 - Q((μ̃_t - μ_t)/σ_t)` where `Q` is the
//! Gaussian tail distribution. Rust's standard library has no `erf`/`erfc`,
//! so this module implements `erfc` with the rational Chebyshev
//! approximation from Numerical Recipes (§6.2, accurate to ~1.2e-7 absolute
//! error everywhere), which is far tighter than anything the anomaly
//! likelihood needs.

/// Complementary error function `erfc(x) = 1 - erf(x)`.
///
/// Absolute error below `1.3e-7` over the whole real line.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    // Numerical Recipes erfcc rational approximation.
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587
                                        + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Standard normal probability density.
pub fn normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// Standard normal cumulative distribution `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Gaussian tail distribution `Q(x) = P(Z > x) = 1 - Φ(x)`.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 1.0),
            (0.5, 0.4795001),
            (1.0, 0.1572992),
            (2.0, 0.0046777),
            (-1.0, 1.8427008),
        ];
        for (x, expect) in cases {
            assert!((erfc(x) - expect).abs() < 2e-6, "erfc({x}) = {} != {expect}", erfc(x));
        }
    }

    #[test]
    fn q_function_reference_values() {
        // Q(0) = 0.5, Q(1.6449) ≈ 0.05, Q(1.96) ≈ 0.025, Q(2.3263) ≈ 0.01.
        assert!((q_function(0.0) - 0.5).abs() < 1e-6);
        assert!((q_function(1.6449) - 0.05).abs() < 1e-4);
        assert!((q_function(1.96) - 0.025).abs() < 1e-4);
        assert!((q_function(2.3263) - 0.01).abs() < 1e-4);
    }

    #[test]
    fn cdf_plus_q_is_one() {
        for i in -40..=40 {
            let x = i as f64 * 0.2;
            assert!((normal_cdf(x) + q_function(x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cdf_symmetry() {
        for i in 0..=30 {
            let x = i as f64 * 0.3;
            assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    fn q_is_monotone_decreasing() {
        let mut prev = q_function(-6.0);
        for i in -59..=60 {
            let x = i as f64 * 0.1;
            let q = q_function(x);
            assert!(q <= prev + 1e-12, "Q not monotone at {x}");
            prev = q;
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        // Trapezoid over [-8, 8].
        let n = 4000;
        let h = 16.0 / n as f64;
        let integral: f64 =
            (0..=n).map(|i| normal_pdf(-8.0 + i as f64 * h) * if i == 0 || i == n { 0.5 } else { 1.0 }).sum::<f64>()
                * h;
        assert!((integral - 1.0).abs() < 1e-6);
    }

    #[test]
    fn extreme_arguments_saturate() {
        assert!(q_function(40.0) >= 0.0);
        assert!(q_function(40.0) < 1e-12);
        assert!((q_function(-40.0) - 1.0).abs() < 1e-12);
    }
}
