//! Two-sample Kolmogorov–Smirnov test.
//!
//! The KSWIN drift strategy (paper §IV-B, following Raab et al. 2020)
//! compares the training set at the last fine-tune time `i` against the
//! current training set `t` one channel at a time. The test statistic is the
//! supremum distance between the two empirical CDFs,
//!
//! ```text
//! dist_{i,t} = sup_x |F_i(x) - F_t(x)|
//! ```
//!
//! and the null hypothesis ("same distribution") is rejected at level α when
//!
//! ```text
//! dist_{i,t} > c(α) * sqrt((r_i + r_t) / (r_i * r_t)),   c(α) = sqrt(ln(2/α) / 2).
//! ```
//!
//! Note the `/2` inside the square root: the paper prints `c(α) = sqrt(ln(2/α))`,
//! omitting the factor ½ of the standard two-sample critical value (Smirnov),
//! which Raab et al. use. We implement the standard form and expose the raw
//! statistic separately so callers can apply any threshold.
//!
//! The implementation sorts both samples and merges them with binary
//! searches, matching the `(1+4m)·N·w·log2(mw)` comparison count the paper
//! reports for KSWIN in Table II (the dominant log factor comes from
//! locating each element's insertion point in the concatenated order).

use crate::opcount::OpCount;

/// Outcome of a two-sample KS test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KsOutcome {
    /// Supremum distance between the two empirical CDFs, in `[0, 1]`.
    pub statistic: f64,
    /// The critical value `c(α)·√((r_i+r_t)/(r_i·r_t))`.
    pub critical_value: f64,
    /// `true` iff `statistic > critical_value` (reject the null hypothesis).
    pub reject: bool,
}

/// Critical value for the two-sample KS test at significance `alpha` with
/// sample sizes `r1` and `r2`.
///
/// # Panics
/// Panics if `alpha` is outside `(0, 1)` or either sample size is zero.
pub fn ks_critical_value(alpha: f64, r1: usize, r2: usize) -> f64 {
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1)");
    assert!(r1 > 0 && r2 > 0, "sample sizes must be positive");
    let c = ((2.0 / alpha).ln() / 2.0).sqrt();
    c * (((r1 + r2) as f64) / ((r1 * r2) as f64)).sqrt()
}

/// Supremum distance between the empirical CDFs of two samples.
///
/// Accepts unsorted input; `O((r1+r2) log)` after sorting. Returns `0.0` if
/// either sample is empty (no evidence of difference). An optional
/// [`OpCount`] accumulates the comparison/addition tallies for Table II.
pub fn ks_statistic(a: &[f64], b: &[f64], ops: Option<&mut OpCount>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut sa = a.to_vec();
    let mut sb = b.to_vec();
    sa.sort_by(f64::total_cmp);
    sb.sort_by(f64::total_cmp);
    let mut count = OpCount::default();
    // Sorting both arrays: ~ r log2(r) comparisons each.
    count.comparisons += approx_sort_cmps(sa.len()) + approx_sort_cmps(sb.len());
    let d = ks_statistic_sorted(&sa, &sb, Some(&mut count));
    if let Some(o) = ops {
        *o += count;
    }
    d
}

/// [`ks_statistic`] for inputs that are already sorted ascending.
///
/// This is the hot path of the KSWIN drift detector, which maintains its
/// training-set snapshots as incrementally sorted per-channel arrays and
/// therefore never pays the sort.
pub fn ks_statistic_sorted(sa: &[f64], sb: &[f64], ops: Option<&mut OpCount>) -> f64 {
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    debug_assert!(sa.windows(2).all(|p| p[0] <= p[1]), "first sample not sorted");
    debug_assert!(sb.windows(2).all(|p| p[0] <= p[1]), "second sample not sorted");
    let mut count = OpCount::default();

    // Walk the merged order of both samples, tracking each ECDF. The loop
    // runs until BOTH samples are exhausted so the supremum over the tail of
    // the longer sample is also considered.
    let (na, nb) = (sa.len() as f64, sb.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d_max = 0.0f64;
    while i < sa.len() || j < sb.len() {
        let x = match (sa.get(i), sb.get(j)) {
            (Some(&a), Some(&b)) => a.min(b),
            (Some(&a), None) => a,
            (None, Some(&b)) => b,
            (None, None) => unreachable!("loop condition guarantees one side remains"),
        };
        count.comparisons += 1;
        while i < sa.len() && sa[i] <= x {
            i += 1;
            count.comparisons += 1;
        }
        while j < sb.len() && sb[j] <= x {
            j += 1;
            count.comparisons += 1;
        }
        let d = (i as f64 / na - j as f64 / nb).abs();
        count.additions += 1;
        count.multiplications += 2; // the two ECDF divisions
        count.comparisons += 1;
        if d > d_max {
            d_max = d;
        }
    }
    if let Some(o) = ops {
        *o += count;
    }
    d_max.clamp(0.0, 1.0)
}

/// Runs the full two-sample KS test at significance `alpha`.
pub fn ks_test(a: &[f64], b: &[f64], alpha: f64, ops: Option<&mut OpCount>) -> KsOutcome {
    let statistic = ks_statistic(a, b, ops);
    if a.is_empty() || b.is_empty() {
        return KsOutcome { statistic: 0.0, critical_value: f64::INFINITY, reject: false };
    }
    let critical_value = ks_critical_value(alpha, a.len(), b.len());
    KsOutcome { statistic, critical_value, reject: statistic > critical_value }
}

fn approx_sort_cmps(n: usize) -> u64 {
    if n < 2 {
        return 0;
    }
    (n as f64 * (n as f64).log2()).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_samples_have_zero_statistic() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&a, &a, None), 0.0);
    }

    #[test]
    fn disjoint_samples_have_statistic_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0, 12.0];
        assert!((ks_statistic(&a, &b, None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn statistic_is_symmetric() {
        let a = [0.1, 0.5, 0.9, 1.3, 2.0];
        let b = [0.2, 0.4, 1.0, 1.1];
        let d1 = ks_statistic(&a, &b, None);
        let d2 = ks_statistic(&b, &a, None);
        assert!((d1 - d2).abs() < 1e-12);
    }

    #[test]
    fn known_small_example() {
        // F_a steps at 1,2 (each 1/2); F_b steps at 1.5, 2.5 (each 1/2).
        // At x=1: |1/2 - 0| = 0.5 is the supremum.
        let a = [1.0, 2.0];
        let b = [1.5, 2.5];
        assert!((ks_statistic(&a, &b, None) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unsorted_input_is_handled() {
        let a = [3.0, 1.0, 2.0];
        let b = [12.0, 10.0, 11.0];
        assert!((ks_statistic(&a, &b, None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sample_gives_zero_and_no_reject() {
        let out = ks_test(&[], &[1.0, 2.0], 0.05, None);
        assert_eq!(out.statistic, 0.0);
        assert!(!out.reject);
    }

    #[test]
    fn critical_value_shrinks_with_sample_size() {
        let small = ks_critical_value(0.05, 10, 10);
        let large = ks_critical_value(0.05, 1000, 1000);
        assert!(large < small);
    }

    #[test]
    fn critical_value_matches_closed_form() {
        // c(0.05) = sqrt(ln(40)/2) ≈ 1.3581; n=m=100 -> * sqrt(2/100).
        let cv = ks_critical_value(0.05, 100, 100);
        let expect = ((2.0f64 / 0.05).ln() / 2.0).sqrt() * (2.0f64 / 100.0).sqrt();
        assert!((cv - expect).abs() < 1e-12);
        assert!((cv - 0.19205).abs() < 1e-4);
    }

    #[test]
    fn shifted_distributions_are_rejected() {
        // Two clearly separated uniform-ish samples.
        let a: Vec<f64> = (0..200).map(|i| i as f64 / 200.0).collect();
        let b: Vec<f64> = (0..200).map(|i| 0.5 + i as f64 / 200.0).collect();
        let out = ks_test(&a, &b, 0.01, None);
        assert!(out.reject, "statistic {} cv {}", out.statistic, out.critical_value);
    }

    #[test]
    fn same_distribution_is_not_rejected() {
        // Interleaved halves of the same deterministic sequence.
        let all: Vec<f64> = (0..400).map(|i| ((i * 37) % 400) as f64 / 400.0).collect();
        let a: Vec<f64> = all.iter().step_by(2).copied().collect();
        let b: Vec<f64> = all.iter().skip(1).step_by(2).copied().collect();
        let out = ks_test(&a, &b, 0.01, None);
        assert!(!out.reject, "statistic {} cv {}", out.statistic, out.critical_value);
    }

    #[test]
    fn op_count_accumulates() {
        let mut ops = OpCount::default();
        let a: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..100).map(|i| i as f64 + 0.5).collect();
        let _ = ks_statistic(&a, &b, Some(&mut ops));
        assert!(ops.comparisons > 100, "comparisons {}", ops.comparisons);
        assert!(ops.additions > 0);
    }

    #[test]
    #[should_panic(expected = "alpha must be in (0, 1)")]
    fn invalid_alpha_panics() {
        ks_critical_value(0.0, 10, 10);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// The KS statistic is always in [0, 1].
            #[test]
            fn statistic_in_unit_interval(
                a in proptest::collection::vec(-1e3f64..1e3, 1..80),
                b in proptest::collection::vec(-1e3f64..1e3, 1..80),
            ) {
                let d = ks_statistic(&a, &b, None);
                prop_assert!((0.0..=1.0).contains(&d));
            }

            /// Symmetry: D(a, b) == D(b, a).
            #[test]
            fn statistic_symmetric(
                a in proptest::collection::vec(-50f64..50.0, 1..60),
                b in proptest::collection::vec(-50f64..50.0, 1..60),
            ) {
                let d1 = ks_statistic(&a, &b, None);
                let d2 = ks_statistic(&b, &a, None);
                prop_assert!((d1 - d2).abs() < 1e-12);
            }

            /// A sample compared against itself is never rejected.
            #[test]
            fn self_comparison_never_rejects(
                a in proptest::collection::vec(-50f64..50.0, 2..60),
            ) {
                let out = ks_test(&a, &a, 0.05, None);
                prop_assert_eq!(out.statistic, 0.0);
                prop_assert!(!out.reject);
            }
        }
    }
}
