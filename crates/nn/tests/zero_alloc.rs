//! Allocation-count guard for the batched training hot loop.
//!
//! The whole point of `MlpWorkspace` is that the steady-state fine-tune
//! inner loop performs **zero heap allocations**: buffers are sized once,
//! then every forward/backward/optimizer step reuses them in place. This
//! test pins that property with a counting global allocator — a regression
//! that reintroduces a per-step `Vec` (the old `DenseCache` clone, the
//! `params_flat` round-trip, …) fails the build instead of silently
//! re-inflating the allocator pressure the ISSUE removed.
//!
//! The counter is thread-local and armed only around the measured loop, so
//! the test harness's own threads never pollute the count. This file is a
//! separate integration-test binary because `#[global_allocator]` is
//! process-wide.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static ALLOCS: Cell<usize> = const { Cell::new(0) };
}

struct CountingAllocator;

impl CountingAllocator {
    fn record() {
        // `try_with` keeps allocator re-entrancy during thread setup or
        // teardown from panicking.
        let _ = ARMED.try_with(|armed| {
            if armed.get() {
                let _ = ALLOCS.try_with(|c| c.set(c.get() + 1));
            }
        });
    }
}

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        Self::record();
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        Self::record();
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAllocator = CountingAllocator;

/// Runs `f` with the counter armed and returns how many heap allocations
/// happened on this thread.
fn count_allocs(f: impl FnOnce()) -> usize {
    ALLOCS.with(|c| c.set(0));
    ARMED.with(|a| a.set(true));
    f();
    ARMED.with(|a| a.set(false));
    ALLOCS.with(|c| c.get())
}

use rand::rngs::StdRng;
use rand::SeedableRng;
use sad_nn::{Activation, Mlp};
use sad_tensor::Adam;

#[test]
fn steady_state_training_loop_does_not_allocate() {
    let mut rng = StdRng::seed_from_u64(42);
    let mut net = Mlp::new(
        &[16, 8, 16],
        &[Activation::Sigmoid, Activation::Identity],
        &mut rng,
    );
    let mut ws = net.workspace(4);
    let mut grads = net.zero_grads();
    let mut opt = Adam::new(1e-3);
    let xs: Vec<Vec<f64>> = (0..8)
        .map(|k| (0..16).map(|i| ((k * 17 + i) as f64 * 0.37).sin()).collect())
        .collect();

    // Warm-up: the first step lazily sizes the Adam moment buffers.
    for chunk in xs.chunks(4) {
        ws.set_batch(chunk.len());
        for (b, x) in chunk.iter().enumerate() {
            ws.input_row_mut(b).copy_from_slice(x);
        }
        net.train_batch_mse_identity(&mut ws, &mut grads, &mut opt);
    }

    // Steady state: 25 epochs over the same data, alternating batch sizes
    // (the models shrink to ragged tail chunks), must be allocation-free.
    let n = count_allocs(|| {
        for _ in 0..25 {
            for chunk in xs.chunks(3) {
                ws.set_batch(chunk.len());
                for (b, x) in chunk.iter().enumerate() {
                    ws.input_row_mut(b).copy_from_slice(x);
                }
                net.train_batch_mse_identity(&mut ws, &mut grads, &mut opt);
            }
        }
    });
    assert_eq!(n, 0, "steady-state batched training must not allocate, saw {n} allocations");
}

#[test]
fn per_sample_compat_path_still_allocates_which_is_why_models_moved_off_it() {
    // Sanity check that the counter actually counts: the legacy per-sample
    // path heap-allocates its caches every step.
    let mut rng = StdRng::seed_from_u64(1);
    let mut net =
        Mlp::new(&[8, 4, 8], &[Activation::Sigmoid, Activation::Identity], &mut rng);
    let mut opt = Adam::new(1e-3);
    let x: Vec<f64> = (0..8).map(|i| (i as f64 * 0.2).cos()).collect();
    net.train_step_mse(&x, &x, &mut opt); // size the moments
    let n = count_allocs(|| {
        net.train_step_mse(&x, &x, &mut opt);
    });
    assert!(n > 0, "the counting allocator must observe the legacy path's allocations");
}
