//! Parity guarantees of the batched training path (ISSUE: batched,
//! zero-allocation NN training).
//!
//! Two families of tests:
//!
//! * **Bitwise parity** — at batch size 1 the workspace-backed batched path
//!   must reproduce the per-sample path *bit for bit*: same forward
//!   activations, same accumulated gradients, same optimizer trajectory.
//!   This is what lets the streaming models default to `batch_size = 1`
//!   and keep every published grid metric byte-identical while still
//!   benefiting from the allocation-free inner loop.
//! * **Workspace reuse** (property-based) — an `MlpWorkspace` is resized
//!   with `set_batch` between chunks of different sizes. Whatever sequence
//!   of batch sizes is replayed, no row of any output may ever depend on
//!   stale state left over from a previous, larger batch.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sad_nn::{Activation, Mlp};
use sad_tensor::{Adam, Sgd};

fn make_net(dims: &[usize], acts: &[Activation], seed: u64) -> Mlp {
    let mut rng = StdRng::seed_from_u64(seed);
    Mlp::new(dims, acts, &mut rng)
}

/// Deterministic pseudo-random input stream (no RNG state shared with the
/// nets).
fn sample(dim: usize, k: usize) -> Vec<f64> {
    (0..dim).map(|i| ((k * 31 + i * 7 + 3) as f64 * 0.61803).sin() * 2.0).collect()
}

/// Batched training at `B = 1` walks the exact same parameter trajectory as
/// the per-sample compatibility path, across architectures, activations and
/// optimizers.
#[test]
fn batch_of_one_reproduces_per_sample_trajectory_bitwise() {
    let configs: &[(&[usize], &[Activation])] = &[
        (&[6, 4, 6], &[Activation::Sigmoid, Activation::Identity]),
        (&[5, 8, 8, 5], &[Activation::Tanh, Activation::Relu, Activation::Identity]),
        (&[3, 2, 3], &[Activation::Relu, Activation::Identity]),
    ];
    for (c, (dims, acts)) in configs.iter().enumerate() {
        let mut per_sample = make_net(dims, acts, 100 + c as u64);
        let mut batched = per_sample.clone();
        let mut opt_a = Adam::new(1e-3);
        let mut opt_b = Adam::new(1e-3);
        let mut ws = batched.workspace(1);
        let mut grads = batched.zero_grads();
        let dim = dims[0];
        for k in 0..50 {
            let x = sample(dim, k);
            per_sample.train_step_mse(&x, &x, &mut opt_a);
            ws.set_batch(1);
            ws.input_row_mut(0).copy_from_slice(&x);
            batched.train_batch_mse_identity(&mut ws, &mut grads, &mut opt_b);
        }
        let a: Vec<u64> = per_sample.params_flat().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = batched.params_flat().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "config {c}: batched B=1 must be bitwise per-sample");
    }
}

/// Same check under plain SGD and SGD-with-momentum (the segmented
/// optimizer step must tile identically for every optimizer).
#[test]
fn batch_of_one_is_bitwise_under_sgd_variants() {
    for momentum in [0.0, 0.9] {
        let dims: &[usize] = &[4, 6, 4];
        let acts = &[Activation::Tanh, Activation::Identity];
        let mut per_sample = make_net(dims, acts, 7);
        let mut batched = per_sample.clone();
        let mut opt_a = Sgd::with_momentum(5e-3, momentum);
        let mut opt_b = Sgd::with_momentum(5e-3, momentum);
        let mut ws = batched.workspace(1);
        let mut grads = batched.zero_grads();
        for k in 0..40 {
            let x = sample(4, k);
            per_sample.train_step_mse(&x, &x, &mut opt_a);
            ws.set_batch(1);
            ws.input_row_mut(0).copy_from_slice(&x);
            batched.train_batch_mse_identity(&mut ws, &mut grads, &mut opt_b);
        }
        let a: Vec<u64> = per_sample.params_flat().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = batched.params_flat().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b, "momentum {momentum}: batched B=1 must be bitwise per-sample");
    }
}

/// Chunked minibatch training (the actual model fine-tune loop shape, with
/// a ragged tail chunk) matches per-sample training bitwise at `B = 1`.
#[test]
fn chunked_training_with_ragged_tail_is_bitwise() {
    let dims: &[usize] = &[5, 7, 5];
    let acts = &[Activation::Sigmoid, Activation::Identity];
    let mut per_sample = make_net(dims, acts, 11);
    let mut batched = per_sample.clone();
    let mut opt_a = Adam::new(2e-3);
    let mut opt_b = Adam::new(2e-3);
    // 13 samples — the per-sample loop and the chunks-of-1 loop must agree.
    let train: Vec<Vec<f64>> = (0..13).map(|k| sample(5, k)).collect();
    for x in &train {
        per_sample.train_step_mse(x, x, &mut opt_a);
    }
    let mut ws = batched.workspace(1);
    let mut grads = batched.zero_grads();
    for chunk in train.chunks(1) {
        ws.set_batch(chunk.len());
        for (b, x) in chunk.iter().enumerate() {
            ws.input_row_mut(b).copy_from_slice(x);
        }
        batched.train_batch_mse_identity(&mut ws, &mut grads, &mut opt_b);
    }
    let a: Vec<u64> = per_sample.params_flat().iter().map(|v| v.to_bits()).collect();
    let b: Vec<u64> = batched.params_flat().iter().map(|v| v.to_bits()).collect();
    assert_eq!(a, b);
}

proptest! {
    /// Replaying any sequence of batch sizes through ONE reused workspace
    /// yields, for every chunk and every row, the exact `infer` output —
    /// i.e. shrinking and regrowing the logical batch never leaks stale
    /// activations, deltas or inputs from earlier (larger) chunks.
    #[test]
    fn workspace_reuse_across_batch_sizes_never_reads_stale_state(
        sizes in proptest::collection::vec(1usize..6, 1..8),
        seed in 0u64..1000,
    ) {
        let net = make_net(&[4, 5, 4], &[Activation::Tanh, Activation::Identity], seed);
        let mut ws = net.workspace(6);
        // Poison the workspace once with a full-capacity batch so any stale
        // read in a later, smaller batch has something to pick up.
        ws.set_batch(6);
        for b in 0..6 {
            ws.input_row_mut(b).copy_from_slice(&sample(4, 999 + b));
        }
        net.forward_batch(&mut ws);

        let mut k = 0usize;
        for &bsz in &sizes {
            ws.set_batch(bsz);
            let mut expect = Vec::with_capacity(bsz);
            for b in 0..bsz {
                let x = sample(4, k);
                k += 1;
                ws.input_row_mut(b).copy_from_slice(&x);
                expect.push(net.infer(&x));
            }
            net.forward_batch(&mut ws);
            for (b, e) in expect.iter().enumerate() {
                let got: Vec<u64> = ws.output_row(b).iter().map(|v| v.to_bits()).collect();
                let want: Vec<u64> = e.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got, want, "row {} of batch {}", b, bsz);
            }
        }
    }

    /// Gradient accumulation through a reused workspace matches per-sample
    /// backward passes bitwise regardless of the preceding batch-size
    /// history.
    #[test]
    fn backward_through_reused_workspace_matches_per_sample(
        first in 1usize..6,
        second in 1usize..6,
        seed in 0u64..1000,
    ) {
        let net = make_net(&[3, 4, 3], &[Activation::Sigmoid, Activation::Identity], seed);
        let mut ws = net.workspace(6);
        // History: one batch of `first` samples, trained through, then a
        // batch of `second` — only the second is compared.
        ws.set_batch(first);
        for b in 0..first {
            ws.input_row_mut(b).copy_from_slice(&sample(3, 100 + b));
        }
        net.forward_batch(&mut ws);

        ws.set_batch(second);
        let xs: Vec<Vec<f64>> = (0..second).map(|b| sample(3, b)).collect();
        for (b, x) in xs.iter().enumerate() {
            ws.input_row_mut(b).copy_from_slice(x);
        }
        net.forward_batch(&mut ws);
        for (b, x) in xs.iter().enumerate() {
            let g = sad_nn::mse_grad(ws.output_row(b).to_vec().as_slice(), x);
            ws.grad_out_mut().row_mut(b).copy_from_slice(&g);
        }
        let mut batched = net.zero_grads();
        net.backward_batch(&mut ws, &mut batched, false);

        // Reference: accumulate per-sample backward passes in row order.
        let mut reference = net.zero_grads();
        for x in &xs {
            let cache = net.forward(x);
            let g = sad_nn::mse_grad(cache.output(), x);
            net.backward(&cache, &g, &mut reference);
        }
        let a: Vec<u64> = batched.flatten().iter().map(|v| v.to_bits()).collect();
        let bvec: Vec<u64> = reference.flatten().iter().map(|v| v.to_bits()).collect();
        prop_assert_eq!(a, bvec);
    }
}
