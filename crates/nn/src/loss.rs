//! Reconstruction losses.
//!
//! USAD's losses (paper §IV-C) are built from squared reconstruction errors
//! `R_i = ||x - AE_i(x)||²`; the plain autoencoder and N-BEATS train on MSE.

/// Mean squared error `(1/d) Σ (ŷ_i - y_i)²`.
pub fn mse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "mse length mismatch");
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter().zip(target).map(|(a, b)| (a - b) * (a - b)).sum::<f64>() / pred.len() as f64
}

/// Gradient of [`mse`] with respect to `pred`: `(2/d)(ŷ - y)`.
pub fn mse_grad(pred: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(pred.len(), target.len(), "mse length mismatch");
    let scale = 2.0 / pred.len().max(1) as f64;
    pred.iter().zip(target).map(|(a, b)| scale * (a - b)).collect()
}

/// Sum of squared errors `Σ (ŷ_i - y_i)²` — the paper's `R_i` terms.
pub fn sse(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len(), "sse length mismatch");
    pred.iter().zip(target).map(|(a, b)| (a - b) * (a - b)).sum()
}

/// Gradient of [`sse`] with respect to `pred`: `2(ŷ - y)`.
pub fn sse_grad(pred: &[f64], target: &[f64]) -> Vec<f64> {
    assert_eq!(pred.len(), target.len(), "sse length mismatch");
    pred.iter().zip(target).map(|(a, b)| 2.0 * (a - b)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_known_value() {
        assert!((mse(&[1.0, 2.0], &[0.0, 4.0]) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn mse_zero_on_identical() {
        let v = [0.3, -1.0, 5.5];
        assert_eq!(mse(&v, &v), 0.0);
        assert!(mse_grad(&v, &v).iter().all(|&g| g == 0.0));
    }

    #[test]
    fn sse_is_d_times_mse() {
        let p = [1.0, 2.0, 3.0];
        let t = [0.0, 0.0, 0.0];
        assert!((sse(&p, &t) - 3.0 * mse(&p, &t)).abs() < 1e-12);
    }

    #[test]
    fn grads_match_finite_differences() {
        let p = [0.5, -0.3, 1.2];
        let t = [0.0, 0.1, 1.0];
        let eps = 1e-6;
        let g_mse = mse_grad(&p, &t);
        let g_sse = sse_grad(&p, &t);
        for k in 0..p.len() {
            let mut pp = p;
            pp[k] += eps;
            let mut pm = p;
            pm[k] -= eps;
            assert!(((mse(&pp, &t) - mse(&pm, &t)) / (2.0 * eps) - g_mse[k]).abs() < 1e-6);
            assert!(((sse(&pp, &t) - sse(&pm, &t)) / (2.0 * eps) - g_sse[k]).abs() < 1e-6);
        }
    }

    #[test]
    fn empty_slices_are_zero_loss() {
        assert_eq!(mse(&[], &[]), 0.0);
        assert_eq!(sse(&[], &[]), 0.0);
    }
}
