//! Multi-layer perceptron: a stack of [`Dense`] layers.

use crate::activation::Activation;
use crate::layer::{Dense, DenseGrads};
use crate::loss::{mse, mse_grad};
use rand::Rng;
use sad_tensor::Optimizer;

/// A feed-forward stack of fully-connected layers.
///
/// Both encoders/decoders of USAD, the 2-layer autoencoder and the FC stacks
/// inside each N-BEATS block are instances of this type.
#[derive(Debug, Clone)]
pub struct Mlp {
    pub(crate) layers: Vec<Dense>,
}

/// Forward activations for one input: the network input plus every layer's
/// post-activation output, each stored exactly once (layer `l`'s input *is*
/// layer `l − 1`'s output — nothing is duplicated).
#[derive(Debug, Clone)]
pub struct MlpCache {
    input: Vec<f64>,
    outputs: Vec<Vec<f64>>,
}

impl MlpCache {
    /// The network output (the last layer's activation).
    pub fn output(&self) -> &[f64] {
        self.outputs.last().expect("non-empty")
    }
}

/// Parameter gradients for a whole [`Mlp`].
#[derive(Debug, Clone)]
pub struct MlpGrads {
    pub(crate) layers: Vec<DenseGrads>,
}

impl Mlp {
    /// Creates an MLP with layer sizes `dims[0] -> dims[1] -> ... -> dims[L]`
    /// and one activation per layer (`acts.len() == dims.len() - 1`).
    pub fn new(dims: &[usize], acts: &[Activation], rng: &mut impl Rng) -> Self {
        assert!(dims.len() >= 2, "an MLP needs at least one layer");
        assert_eq!(acts.len(), dims.len() - 1, "one activation per layer required");
        let layers = dims
            .windows(2)
            .zip(acts)
            .map(|(pair, &act)| Dense::xavier(pair[0], pair[1], act, rng))
            .collect();
        Self { layers }
    }

    /// Builds an MLP from explicit layers (used by tests and custom models).
    pub fn from_layers(layers: Vec<Dense>) -> Self {
        assert!(!layers.is_empty(), "an MLP needs at least one layer");
        for pair in layers.windows(2) {
            assert_eq!(pair[0].out_dim(), pair[1].in_dim(), "layer dimension chain broken");
        }
        Self { layers }
    }

    /// The layers, in order.
    pub fn layers(&self) -> &[Dense] {
        &self.layers
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.layers[0].in_dim()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.layers.last().expect("non-empty").out_dim()
    }

    /// Total scalar parameter count.
    pub fn num_params(&self) -> usize {
        self.layers.iter().map(Dense::num_params).sum()
    }

    /// Inference-only forward pass.
    pub fn infer(&self, x: &[f64]) -> Vec<f64> {
        let mut cur = x.to_vec();
        for layer in &self.layers {
            cur = layer.infer(&cur);
        }
        cur
    }

    /// Forward pass keeping the activations needed for [`Self::backward`].
    ///
    /// The returned cache stores each activation exactly once; read the
    /// network output via [`MlpCache::output`].
    pub fn forward(&self, x: &[f64]) -> MlpCache {
        let mut outputs: Vec<Vec<f64>> = Vec::with_capacity(self.layers.len());
        for (l, layer) in self.layers.iter().enumerate() {
            let out = if l == 0 { layer.infer(x) } else { layer.infer(&outputs[l - 1]) };
            outputs.push(out);
        }
        MlpCache { input: x.to_vec(), outputs }
    }

    /// Backward pass: given `∂L/∂ŷ`, accumulates parameter gradients into
    /// `grads` and returns `∂L/∂x` (enabling cross-network chaining).
    pub fn backward(&self, cache: &MlpCache, grad_out: &[f64], grads: &mut MlpGrads) -> Vec<f64> {
        assert_eq!(cache.outputs.len(), self.layers.len(), "cache/layer count mismatch");
        let mut grad = grad_out.to_vec();
        for l in (0..self.layers.len()).rev() {
            let input = if l == 0 { &cache.input } else { &cache.outputs[l - 1] };
            grad = self.layers[l].backward(input, &cache.outputs[l], &grad, &mut grads.layers[l]);
        }
        grad
    }

    /// Zeroed gradient buffers shaped like this network.
    pub fn zero_grads(&self) -> MlpGrads {
        MlpGrads { layers: self.layers.iter().map(Dense::zero_grads).collect() }
    }

    /// Flattens all parameters (row-major weights then bias, per layer).
    pub fn params_flat(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.num_params());
        for layer in &self.layers {
            out.extend_from_slice(layer.weights.as_slice());
            out.extend_from_slice(&layer.bias);
        }
        out
    }

    /// Restores parameters from a flat buffer produced by [`Self::params_flat`].
    ///
    /// # Panics
    /// Panics if the buffer length does not match [`Self::num_params`].
    pub fn set_params_flat(&mut self, flat: &[f64]) {
        assert_eq!(flat.len(), self.num_params(), "flat parameter length mismatch");
        let mut offset = 0;
        for layer in &mut self.layers {
            let wlen = layer.weights.rows() * layer.weights.cols();
            layer.weights.as_mut_slice().copy_from_slice(&flat[offset..offset + wlen]);
            offset += wlen;
            let blen = layer.bias.len();
            layer.bias.copy_from_slice(&flat[offset..offset + blen]);
            offset += blen;
        }
    }

    /// One optimizer step from accumulated gradients, **in place** on the
    /// layer parameters.
    ///
    /// Uses the optimizer's segmented-step API ([`Optimizer::begin_step`] +
    /// one [`Optimizer::step_segment`] per weight matrix / bias vector), so
    /// the update is bitwise identical to flattening the parameters through
    /// `params_flat()`/`set_params_flat()` and calling `opt.step` once —
    /// without the three `O(P)` copies and two heap allocations that
    /// round-trip used to cost per training step.
    pub fn apply_grads(&mut self, grads: &MlpGrads, opt: &mut dyn Optimizer) {
        opt.begin_step(self.num_params());
        self.apply_grads_segmented(grads, opt, 0);
    }

    /// Applies `opt.step_segment` for every layer, starting at `offset`
    /// within the optimizer's logical parameter buffer; returns the offset
    /// just past this network.
    ///
    /// This is the composition hook for models that drive *several*
    /// networks from one optimizer instance (N-BEATS steps each block's
    /// trunk + backcast head + forecast head as one logical buffer): call
    /// `opt.begin_step(total)` once, then chain `apply_grads_segmented`
    /// over the networks in the pinned parameter order.
    pub fn apply_grads_segmented(
        &mut self,
        grads: &MlpGrads,
        opt: &mut dyn Optimizer,
        offset: usize,
    ) -> usize {
        assert_eq!(self.layers.len(), grads.layers.len(), "grad shape mismatch");
        let mut off = offset;
        for (layer, lg) in self.layers.iter_mut().zip(&grads.layers) {
            let w = layer.weights.as_mut_slice();
            opt.step_segment(off, w, lg.weights.as_slice());
            off += lg.weights.rows() * lg.weights.cols();
            opt.step_segment(off, &mut layer.bias, &lg.bias);
            off += lg.bias.len();
        }
        off
    }

    /// One full MSE training step on a single example. Returns the loss
    /// *before* the update.
    ///
    /// This is the compatibility per-sample API (used by the single-stream
    /// fork experiment); the streaming models train through the batched
    /// workspace path in `batch.rs`, which is bitwise identical to this one
    /// at batch size 1.
    pub fn train_step_mse(&mut self, x: &[f64], target: &[f64], opt: &mut dyn Optimizer) -> f64 {
        let cache = self.forward(x);
        let loss = mse(cache.output(), target);
        let grad_out = mse_grad(cache.output(), target);
        let mut grads = self.zero_grads();
        self.backward(&cache, &grad_out, &mut grads);
        self.apply_grads(&grads, opt);
        loss
    }

    /// `true` if every parameter is finite (guards against divergence during
    /// streaming fine-tuning).
    pub fn is_finite(&self) -> bool {
        self.layers.iter().all(|l| l.weights.is_finite() && l.bias.iter().all(|b| b.is_finite()))
    }

    /// `true` iff `other` has the same architecture (layer shapes and
    /// activations) and **bitwise identical** parameters.
    ///
    /// This is the eligibility check for cross-stream batched inference: a
    /// fleet may push several streams' inputs through one weight matrix
    /// only when the streams' networks are exact clones — bit equality
    /// (`f64::to_bits`, so `-0.0 ≠ 0.0` and NaNs compare by payload) is
    /// what makes the shared forward pass provably identical to each
    /// stream's own.
    pub fn params_equal(&self, other: &Mlp) -> bool {
        self.layers.len() == other.layers.len()
            && self.layers.iter().zip(&other.layers).all(|(a, b)| {
                a.activation == b.activation
                    && a.weights.shape() == b.weights.shape()
                    && a.bias.len() == b.bias.len()
                    && a.weights
                        .as_slice()
                        .iter()
                        .zip(b.weights.as_slice())
                        .all(|(x, y)| x.to_bits() == y.to_bits())
                    && a.bias.iter().zip(&b.bias).all(|(x, y)| x.to_bits() == y.to_bits())
            })
    }
}

impl MlpGrads {
    /// Flattens gradients in the same order as [`Mlp::params_flat`].
    pub fn flatten(&self) -> Vec<f64> {
        let mut out = Vec::new();
        for layer in &self.layers {
            out.extend_from_slice(layer.weights.as_slice());
            out.extend_from_slice(&layer.bias);
        }
        out
    }

    /// Adds another gradient accumulation (for mini-batches).
    pub fn accumulate(&mut self, other: &MlpGrads) {
        assert_eq!(self.layers.len(), other.layers.len(), "grad shape mismatch");
        for (a, b) in self.layers.iter_mut().zip(&other.layers) {
            a.weights.add_scaled(&b.weights, 1.0);
            for (x, y) in a.bias.iter_mut().zip(&b.bias) {
                *x += y;
            }
        }
    }

    /// Scales all gradients by `s` (e.g. `1/batch`), in place — no
    /// temporary matrix is allocated.
    pub fn scale(&mut self, s: f64) {
        for layer in &mut self.layers {
            layer.weights.scale_mut(s);
            for b in &mut layer.bias {
                *b *= s;
            }
        }
    }

    /// Zeroes every gradient in place (reusing the buffers between steps).
    pub fn zero(&mut self) {
        for layer in &mut self.layers {
            layer.weights.fill(0.0);
            layer.bias.fill(0.0);
        }
    }

    /// The per-layer gradient buffers, in layer order.
    pub fn layers(&self) -> &[DenseGrads] {
        &self.layers
    }

    /// Mutable per-layer gradient buffers (e.g. to zero a frozen layer's
    /// gradients before an optimizer step).
    pub fn layers_mut(&mut self) -> &mut [DenseGrads] {
        &mut self.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sad_tensor::{Adam, Sgd};

    fn tiny_mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&[3, 4, 2], &[Activation::Tanh, Activation::Identity], &mut rng)
    }

    #[test]
    fn infer_matches_forward() {
        let mlp = tiny_mlp(3);
        let x = [0.2, -0.4, 0.9];
        let cache = mlp.forward(&x);
        assert_eq!(mlp.infer(&x), cache.output());
    }

    #[test]
    fn params_round_trip() {
        let mut mlp = tiny_mlp(5);
        let flat = mlp.params_flat();
        assert_eq!(flat.len(), mlp.num_params());
        let mut other = tiny_mlp(99);
        other.set_params_flat(&flat);
        let x = [0.1, 0.2, 0.3];
        assert_eq!(mlp.infer(&x), other.infer(&x));
        // Round trip is exact.
        mlp.set_params_flat(&flat);
        assert_eq!(mlp.params_flat(), flat);
    }

    /// Finite-difference check of the full-network gradient.
    #[test]
    fn grad_check_full_network() {
        let mut mlp = tiny_mlp(11);
        let x = [0.3, -0.1, 0.5];
        let target = [0.2, -0.7];

        let cache = mlp.forward(&x);
        let grad_out = mse_grad(cache.output(), &target);
        let mut grads = mlp.zero_grads();
        let grad_in = mlp.backward(&cache, &grad_out, &mut grads);
        let flat_grads = grads.flatten();

        let eps = 1e-6;
        let mut params = mlp.params_flat();
        for k in 0..params.len() {
            let orig = params[k];
            params[k] = orig + eps;
            mlp.set_params_flat(&params);
            let lp = mse(&mlp.infer(&x), &target);
            params[k] = orig - eps;
            mlp.set_params_flat(&params);
            let lm = mse(&mlp.infer(&x), &target);
            params[k] = orig;
            let fd = (lp - lm) / (2.0 * eps);
            assert!((fd - flat_grads[k]).abs() < 1e-5, "param {k}: fd {fd} vs {}", flat_grads[k]);
        }
        mlp.set_params_flat(&params);

        // Input gradient.
        for k in 0..x.len() {
            let mut xp = x;
            xp[k] += eps;
            let mut xm = x;
            xm[k] -= eps;
            let fd = (mse(&mlp.infer(&xp), &target) - mse(&mlp.infer(&xm), &target)) / (2.0 * eps);
            assert!((fd - grad_in[k]).abs() < 1e-5, "dx[{k}]");
        }
    }

    #[test]
    fn sgd_training_reduces_loss() {
        let mut mlp = tiny_mlp(21);
        let mut opt = Sgd::new(0.05);
        let x = [0.5, -0.5, 1.0];
        let target = [1.0, -1.0];
        let first = mlp.train_step_mse(&x, &target, &mut opt);
        let mut last = first;
        for _ in 0..300 {
            last = mlp.train_step_mse(&x, &target, &mut opt);
        }
        assert!(last < first * 0.05, "loss did not drop: {first} -> {last}");
    }

    #[test]
    fn adam_learns_identity_map() {
        // Train a 2-2 linear network to reproduce its input on a few points.
        let mut rng = StdRng::seed_from_u64(77);
        let mut mlp = Mlp::new(&[2, 8, 2], &[Activation::Tanh, Activation::Identity], &mut rng);
        let mut opt = Adam::new(0.01);
        let points: Vec<[f64; 2]> = vec![[0.1, 0.2], [-0.3, 0.4], [0.5, -0.5], [0.0, 0.3]];
        for _ in 0..600 {
            for p in &points {
                mlp.train_step_mse(p, p, &mut opt);
            }
        }
        for p in &points {
            let y = mlp.infer(p);
            assert!(mse(&y, p) < 1e-3, "point {p:?} -> {y:?}");
        }
    }

    #[test]
    fn accumulate_and_scale() {
        let mlp = tiny_mlp(31);
        let x = [0.3, -0.1, 0.5];
        let target = [0.2, -0.7];
        let cache = mlp.forward(&x);
        let grad_out = mse_grad(cache.output(), &target);

        let mut g1 = mlp.zero_grads();
        mlp.backward(&cache, &grad_out, &mut g1);
        let mut g2 = mlp.zero_grads();
        mlp.backward(&cache, &grad_out, &mut g2);
        g2.accumulate(&g1);
        g2.scale(0.5);
        let f1 = g1.flatten();
        let f2 = g2.flatten();
        for (a, b) in f1.iter().zip(&f2) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn params_equal_detects_clones_and_divergence() {
        let mlp = tiny_mlp(51);
        let mut clone = mlp.clone();
        assert!(mlp.params_equal(&clone));
        let mut params = clone.params_flat();
        params[3] = f64::from_bits(params[3].to_bits() ^ 1); // one-ulp drift breaks bit equality
        clone.set_params_flat(&params);
        assert!(!mlp.params_equal(&clone));
        // Different architecture never compares equal.
        let mut rng = StdRng::seed_from_u64(1);
        let other = Mlp::new(&[3, 5, 2], &[Activation::Tanh, Activation::Identity], &mut rng);
        assert!(!mlp.params_equal(&other));
    }

    #[test]
    fn is_finite_detects_divergence() {
        let mut mlp = tiny_mlp(41);
        assert!(mlp.is_finite());
        let mut params = mlp.params_flat();
        params[0] = f64::INFINITY;
        mlp.set_params_flat(&params);
        assert!(!mlp.is_finite());
    }

    #[test]
    #[should_panic(expected = "one activation per layer")]
    fn wrong_activation_count_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = Mlp::new(&[2, 2], &[], &mut rng);
    }

    #[test]
    #[should_panic(expected = "layer dimension chain broken")]
    fn broken_layer_chain_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let l1 = Dense::xavier(2, 3, Activation::Identity, &mut rng);
        let l2 = Dense::xavier(4, 2, Activation::Identity, &mut rng);
        let _ = Mlp::from_layers(vec![l1, l2]);
    }
}
