//! Element-wise activation functions.

/// An element-wise activation function.
///
/// The derivative is expressed *in terms of the activation output* — for
/// every activation used here (`σ' = y(1-y)`, `tanh' = 1-y²`, `relu' = [y>0]`,
/// `id' = 1`) the derivative is recoverable from the output alone, so the
/// layer cache only needs to store post-activation values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// `f(x) = x`.
    Identity,
    /// Logistic sigmoid `1 / (1 + e^{-x})`.
    Sigmoid,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Hyperbolic tangent.
    Tanh,
}

impl Activation {
    /// Applies the activation to a scalar.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Derivative `f'(x)` computed from the *output* `y = f(x)`.
    #[inline]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Relu => {
                if y > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::Tanh => 1.0 - y * y,
        }
    }

    /// Applies the activation to a slice in place.
    pub fn apply_slice(self, xs: &mut [f64]) {
        for x in xs {
            *x = self.apply(*x);
        }
    }

    /// Applies the activation to an `f32` scalar, entirely in `f32`
    /// arithmetic (no widen/narrow round-trip) — the inference-plan fast
    /// path. Agrees with [`Self::apply`] to within f32 rounding; the f64
    /// training path never calls this.
    #[inline]
    pub fn apply_f32(self, x: f32) -> f32 {
        match self {
            Activation::Identity => x,
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Activation::Relu => x.max(0.0),
            Activation::Tanh => x.tanh(),
        }
    }

    /// Applies the activation to an `f32` slice in place.
    pub fn apply_slice_f32(self, xs: &mut [f32]) {
        for x in xs {
            *x = self.apply_f32(*x);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_range_and_midpoint() {
        assert!((Activation::Sigmoid.apply(0.0) - 0.5).abs() < 1e-12);
        assert!(Activation::Sigmoid.apply(100.0) <= 1.0);
        assert!(Activation::Sigmoid.apply(-100.0) >= 0.0);
    }

    #[test]
    fn relu_clamps_negatives() {
        assert_eq!(Activation::Relu.apply(-3.0), 0.0);
        assert_eq!(Activation::Relu.apply(2.5), 2.5);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for act in [Activation::Identity, Activation::Sigmoid, Activation::Tanh] {
            for i in -20..=20 {
                let x = i as f64 * 0.25;
                let y = act.apply(x);
                let fd = (act.apply(x + eps) - act.apply(x - eps)) / (2.0 * eps);
                let an = act.derivative_from_output(y);
                assert!((fd - an).abs() < 1e-5, "{act:?} at {x}: fd {fd} vs {an}");
            }
        }
        // ReLU away from the kink.
        for x in [-2.0, -0.5, 0.5, 2.0] {
            let y = Activation::Relu.apply(x);
            let fd = (Activation::Relu.apply(x + eps) - Activation::Relu.apply(x - eps)) / (2.0 * eps);
            assert!((fd - Activation::Relu.derivative_from_output(y)).abs() < 1e-5);
        }
    }

    #[test]
    fn apply_slice_applies_elementwise() {
        let mut xs = [-1.0, 0.0, 2.0];
        Activation::Relu.apply_slice(&mut xs);
        assert_eq!(xs, [0.0, 0.0, 2.0]);
    }

    #[test]
    fn tanh_is_odd() {
        for i in 1..10 {
            let x = i as f64 * 0.3;
            assert!((Activation::Tanh.apply(x) + Activation::Tanh.apply(-x)).abs() < 1e-12);
        }
    }
}
