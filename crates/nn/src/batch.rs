//! Batched, workspace-backed training path.
//!
//! The streaming fine-tune loop is the Table III grid's tail: USAD, N-BEATS
//! and the 2-layer AE under the sliding-window strategy retrain on every
//! drift signal, and the per-sample path walks `O(P)` heap allocations per
//! step (activation vectors, caches, flattened parameter copies). This
//! module packs a minibatch into row-major [`Matrix`] activations and
//! drives the cache-blocked `sad-tensor` kernels instead:
//!
//! * **forward**: one [`Matrix::matmul_transpose_b_into`] per layer
//!   (`X · Wᵀ`, every output element a contiguous `dot4`),
//! * **backward**: one [`Matrix::matmul_transpose_a_acc`] per layer for
//!   the weight gradient (`δᵀ · X` — one GEMM instead of `B` rank-1
//!   sweeps) and one [`Matrix::matmul_into`] for the input gradient
//!   (`δ · W`),
//! * **buffers**: a reusable [`MlpWorkspace`] holds every activation,
//!   delta and gradient matrix, sized once — the steady-state inner loop
//!   performs **zero heap allocations** (guarded by the
//!   `alloc_free_training` integration test).
//!
//! ## Pinned summation order (bitwise parity)
//!
//! The batched path is **bitwise identical** to the per-sample path at
//! batch size 1, and its batch-of-`B` gradient is bitwise identical to
//! accumulating `B` per-sample gradients in ascending sample order:
//!
//! * forward: `matmul_transpose_b_into` computes `dot4(x_b, w_o)`; the
//!   per-sample [`Matrix::matvec`] computes `dot4(w_o, x_b)` — IEEE-754
//!   multiplication commutes and the four-accumulator reduction order is
//!   identical, so the results agree bitwise.
//! * weight gradients: `matmul_transpose_a_acc` accumulates one rank-1
//!   row sweep per sample, ascending — the exact loop order of
//!   [`crate::Dense::backward`].
//! * input gradients: the i-k-j `matmul_into` with its `a == 0.0` skip is
//!   the row-batched form of [`Matrix::matvec_t`] with its `vi == 0.0`
//!   skip.
//! * optimizer: [`Optimizer::step_segment`] over slices that tile the
//!   parameter buffer in order is bitwise identical to one flat
//!   [`Optimizer::step`].
//!
//! The parity tests in `tests/batch_parity.rs` assert these equalities
//! exactly (`f64::to_bits`), with no tolerances.

use crate::mlp::{Mlp, MlpGrads};
use sad_tensor::{Matrix, Optimizer};

/// Reusable buffers for one network's batched forward/backward pass.
///
/// All matrices are allocated once for `max_batch` rows; smaller (trailing)
/// batches shrink the logical row count via [`Matrix::resize_rows`], which
/// stays within the original capacity and never reallocates. A workspace is
/// tied to the layer geometry of the [`Mlp`] it was created from.
#[derive(Debug, Clone)]
pub struct MlpWorkspace {
    /// Layer widths `[in, h₁, …, out]` this workspace was shaped for.
    dims: Vec<usize>,
    max_batch: usize,
    batch: usize,
    /// `false` for inference-only workspaces (see [`Self::inference`]):
    /// the delta and input-gradient buffers are not allocated and
    /// [`Mlp::backward_batch`] is rejected.
    training: bool,
    /// `B × in_dim` network input.
    input: Matrix,
    /// Per layer: `B × out_dim(l)` post-activation output.
    acts: Vec<Matrix>,
    /// Per layer: `B × out_dim(l)` gradient buffer. During
    /// [`Mlp::backward_batch`], `deltas[l]` first holds `∂L/∂act_l` and is
    /// then turned into the pre-activation delta in place. The caller seeds
    /// `deltas[last]` (via [`Self::grad_out_mut`]) with `∂L/∂ŷ`. Empty for
    /// inference-only workspaces.
    deltas: Vec<Matrix>,
    /// `B × in_dim` input gradient (filled on request). `1 × in_dim` for
    /// inference-only workspaces (never resized, never read).
    grad_in: Matrix,
}

impl MlpWorkspace {
    /// Creates a workspace for `mlp` with room for `max_batch` rows.
    pub fn new(mlp: &Mlp, max_batch: usize) -> Self {
        assert!(max_batch > 0, "workspace needs at least one batch row");
        let mut dims = Vec::with_capacity(mlp.layers.len() + 1);
        dims.push(mlp.in_dim());
        for layer in &mlp.layers {
            dims.push(layer.out_dim());
        }
        let acts = dims[1..].iter().map(|&d| Matrix::zeros(max_batch, d)).collect();
        let deltas = dims[1..].iter().map(|&d| Matrix::zeros(max_batch, d)).collect();
        Self {
            input: Matrix::zeros(max_batch, dims[0]),
            grad_in: Matrix::zeros(max_batch, dims[0]),
            acts,
            deltas,
            max_batch,
            batch: max_batch,
            training: true,
            dims,
        }
    }

    /// Creates an **inference-only** workspace for `mlp` with room for
    /// `max_batch` rows.
    ///
    /// Only the input and activation matrices are allocated — roughly half
    /// the footprint of a training workspace — which is what a serving
    /// layer batching inference across many streams wants.
    /// [`Mlp::forward_batch`] behaves identically (bitwise) to a training
    /// workspace; [`Mlp::backward_batch`] panics.
    pub fn inference(mlp: &Mlp, max_batch: usize) -> Self {
        assert!(max_batch > 0, "workspace needs at least one batch row");
        let mut dims = Vec::with_capacity(mlp.layers.len() + 1);
        dims.push(mlp.in_dim());
        for layer in &mlp.layers {
            dims.push(layer.out_dim());
        }
        let acts = dims[1..].iter().map(|&d| Matrix::zeros(max_batch, d)).collect();
        Self {
            input: Matrix::zeros(max_batch, dims[0]),
            grad_in: Matrix::zeros(1, dims[0]),
            acts,
            deltas: Vec::new(),
            max_batch,
            batch: max_batch,
            training: false,
            dims,
        }
    }

    /// Whether this workspace supports [`Mlp::backward_batch`] (i.e. was
    /// created with [`Self::new`] rather than [`Self::inference`]).
    pub fn supports_training(&self) -> bool {
        self.training
    }

    /// Maximum number of rows the workspace was allocated for.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Current logical batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Sets the logical batch size for the next forward/backward pass.
    ///
    /// # Panics
    /// Panics if `batch` is zero or exceeds [`Self::max_batch`] (growing
    /// past the allocated capacity would reallocate).
    pub fn set_batch(&mut self, batch: usize) {
        assert!(batch > 0, "batch size must be positive");
        assert!(
            batch <= self.max_batch,
            "batch {batch} exceeds workspace capacity {}",
            self.max_batch
        );
        self.batch = batch;
        self.input.resize_rows(batch);
        for m in &mut self.acts {
            m.resize_rows(batch);
        }
        if self.training {
            self.grad_in.resize_rows(batch);
            for m in &mut self.deltas {
                m.resize_rows(batch);
            }
        }
    }

    /// The input matrix (`batch × in_dim`).
    pub fn input(&self) -> &Matrix {
        &self.input
    }

    /// Mutable input matrix, for chaining another network's output in.
    pub fn input_mut(&mut self) -> &mut Matrix {
        &mut self.input
    }

    /// Mutable input row `b`, for the caller to fill.
    pub fn input_row_mut(&mut self, b: usize) -> &mut [f64] {
        self.input.row_mut(b)
    }

    /// The network output of the last forward pass (`batch × out_dim`).
    pub fn output(&self) -> &Matrix {
        self.acts.last().expect("non-empty")
    }

    /// Output row `b` of the last forward pass.
    pub fn output_row(&self, b: usize) -> &[f64] {
        self.acts.last().expect("non-empty").row(b)
    }

    /// The output-gradient buffer the caller seeds with `∂L/∂ŷ` before
    /// [`Mlp::backward_batch`].
    pub fn grad_out_mut(&mut self) -> &mut Matrix {
        assert!(self.training, "inference-only workspace has no gradient buffers");
        self.deltas.last_mut().expect("non-empty")
    }

    /// Input, output and output-gradient buffers together (disjoint
    /// borrows), for loss gradients computed from workspace state — e.g.
    /// the autoencoder's `∂MSE(ŷ, x)/∂ŷ`.
    pub fn io_split(&mut self) -> (&Matrix, &Matrix, &mut Matrix) {
        assert!(self.training, "inference-only workspace has no gradient buffers");
        (&self.input, self.acts.last().expect("non-empty"), self.deltas.last_mut().expect("non-empty"))
    }

    /// The input gradient `∂L/∂X` of the last backward pass (only valid if
    /// it was requested).
    pub fn grad_in(&self) -> &Matrix {
        assert!(self.training, "inference-only workspace has no gradient buffers");
        &self.grad_in
    }

    fn check_geometry(&self, mlp: &Mlp) {
        assert_eq!(self.dims.len(), mlp.layers.len() + 1, "workspace/layer count mismatch");
        assert_eq!(self.dims[0], mlp.in_dim(), "workspace input width mismatch");
        for (d, layer) in self.dims[1..].iter().zip(&mlp.layers) {
            assert_eq!(*d, layer.out_dim(), "workspace layer width mismatch");
        }
    }
}

impl Mlp {
    /// Creates a workspace shaped for this network with `max_batch` rows.
    pub fn workspace(&self, max_batch: usize) -> MlpWorkspace {
        MlpWorkspace::new(self, max_batch)
    }

    /// Creates an inference-only workspace (see [`MlpWorkspace::inference`]).
    pub fn inference_workspace(&self, max_batch: usize) -> MlpWorkspace {
        MlpWorkspace::inference(self, max_batch)
    }

    /// Batched forward pass over the `ws.batch()` rows of `ws.input()`.
    ///
    /// Each layer is one `X · Wᵀ` GEMM ([`Matrix::matmul_transpose_b_into`])
    /// followed by an in-place bias add and activation per row. Performs no
    /// heap allocation.
    pub fn forward_batch(&self, ws: &mut MlpWorkspace) {
        ws.check_geometry(self);
        let batch = ws.batch;
        for (l, layer) in self.layers.iter().enumerate() {
            let (done, todo) = ws.acts.split_at_mut(l);
            let x = if l == 0 { &ws.input } else { &done[l - 1] };
            let act = &mut todo[0];
            x.matmul_transpose_b_into(&layer.weights, act);
            for b in 0..batch {
                let row = act.row_mut(b);
                for (o, bias) in row.iter_mut().zip(&layer.bias) {
                    *o += bias;
                }
                layer.activation.apply_slice(row);
            }
        }
    }

    /// Batched backward pass.
    ///
    /// Expects the caller to have run [`Self::forward_batch`] on `ws` and
    /// written `∂L/∂ŷ` into [`MlpWorkspace::grad_out_mut`]. Accumulates
    /// parameter gradients into `grads` (summed over the batch in ascending
    /// sample order — see the module docs for why this order is pinned) and,
    /// if `want_grad_in`, writes `∂L/∂X` into the workspace's
    /// [`MlpWorkspace::grad_in`] buffer for cross-network chaining.
    /// Performs no heap allocation.
    pub fn backward_batch(&self, ws: &mut MlpWorkspace, grads: &mut MlpGrads, want_grad_in: bool) {
        ws.check_geometry(self);
        assert!(ws.training, "backward_batch needs a training workspace (see MlpWorkspace::inference)");
        assert_eq!(grads.layers.len(), self.layers.len(), "grad shape mismatch");
        let batch = ws.batch;
        for l in (0..self.layers.len()).rev() {
            let layer = &self.layers[l];
            // δ_l = ∂L/∂act_l ⊙ act'(y_l), in place.
            {
                let delta = &mut ws.deltas[l];
                let act = &ws.acts[l];
                for b in 0..batch {
                    for (d, &y) in delta.row_mut(b).iter_mut().zip(act.row(b)) {
                        *d *= layer.activation.derivative_from_output(y);
                    }
                }
            }
            // ∂L/∂W += δᵀ · X — one GEMM accumulating rank-1 terms in
            // ascending sample order.
            let x = if l == 0 { &ws.input } else { &ws.acts[l - 1] };
            ws.deltas[l].matmul_transpose_a_acc(x, &mut grads.layers[l].weights);
            // ∂L/∂b += Σ_b δ_b, ascending.
            for b in 0..batch {
                for (gb, &d) in grads.layers[l].bias.iter_mut().zip(ws.deltas[l].row(b)) {
                    *gb += d;
                }
            }
            // ∂L/∂act_{l−1} = δ_l · W_l, into the next delta buffer down.
            if l > 0 {
                let (below, here) = ws.deltas.split_at_mut(l);
                here[0].matmul_into(&layer.weights, &mut below[l - 1]);
            } else if want_grad_in {
                ws.deltas[0].matmul_into(&layer.weights, &mut ws.grad_in);
            }
        }
    }

    /// One batched MSE *autoencoder* training step: target ≡ input.
    ///
    /// The caller fills `ws.input_row_mut(b)` for `b < ws.batch()`. For
    /// batches larger than one the summed gradient is scaled by `1/B`
    /// (minibatch mean, as in USAD's reference formulation); at `B = 1` the
    /// step is bitwise identical to [`Mlp::train_step_mse`] with
    /// `target == x`. Returns the mean per-sample MSE before the update.
    /// Performs no steady-state heap allocation.
    pub fn train_batch_mse_identity(
        &mut self,
        ws: &mut MlpWorkspace,
        grads: &mut MlpGrads,
        opt: &mut dyn Optimizer,
    ) -> f64 {
        self.forward_batch(ws);
        let batch = ws.batch;
        let mut loss_sum = 0.0;
        {
            let (input, output, grad_out) = ws.io_split();
            let d = self.out_dim();
            let scale = 2.0 / d.max(1) as f64;
            for b in 0..batch {
                let x = input.row(b);
                let y = output.row(b);
                let g = grad_out.row_mut(b);
                let mut sq = 0.0;
                for ((gi, &yi), &xi) in g.iter_mut().zip(y).zip(x) {
                    sq += (yi - xi) * (yi - xi);
                    *gi = scale * (yi - xi);
                }
                loss_sum += sq / d.max(1) as f64;
            }
        }
        grads.zero();
        self.backward_batch(ws, grads, false);
        if batch > 1 {
            grads.scale(1.0 / batch as f64);
        }
        self.apply_grads(grads, opt);
        loss_sum / batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use crate::loss::mse_grad;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sad_tensor::Adam;

    fn tiny_mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&[3, 5, 3], &[Activation::Tanh, Activation::Identity], &mut rng)
    }

    fn sample(k: usize) -> Vec<f64> {
        (0..3).map(|j| ((k * 3 + j) as f64 * 0.37).sin()).collect()
    }

    #[test]
    fn forward_batch_rows_match_per_sample_infer_bitwise() {
        let mlp = tiny_mlp(1);
        let mut ws = mlp.workspace(4);
        ws.set_batch(4);
        for b in 0..4 {
            ws.input_row_mut(b).copy_from_slice(&sample(b));
        }
        mlp.forward_batch(&mut ws);
        for b in 0..4 {
            let per_sample = mlp.infer(&sample(b));
            let batched: Vec<u64> = ws.output_row(b).iter().map(|v| v.to_bits()).collect();
            let reference: Vec<u64> = per_sample.iter().map(|v| v.to_bits()).collect();
            assert_eq!(batched, reference, "row {b}");
        }
    }

    #[test]
    fn backward_batch_equals_accumulated_per_sample_grads_bitwise() {
        let mlp = tiny_mlp(2);
        let target = [0.2, -0.1, 0.4];

        // Reference: per-sample backward, accumulated in ascending order.
        let mut ref_grads = mlp.zero_grads();
        for b in 0..3 {
            let x = sample(b);
            let cache = mlp.forward(&x);
            let g = mse_grad(cache.output(), &target);
            mlp.backward(&cache, &g, &mut ref_grads);
        }

        // Batched: one backward over the 3-row workspace.
        let mut ws = mlp.workspace(3);
        ws.set_batch(3);
        for b in 0..3 {
            ws.input_row_mut(b).copy_from_slice(&sample(b));
        }
        mlp.forward_batch(&mut ws);
        for b in 0..3 {
            let g = mse_grad(ws.output().row(b), &target);
            ws.grad_out_mut().row_mut(b).copy_from_slice(&g);
        }
        let mut grads = mlp.zero_grads();
        mlp.backward_batch(&mut ws, &mut grads, false);

        let a: Vec<u64> = grads.flatten().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u64> = ref_grads.flatten().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn grad_in_matches_per_sample_chain_bitwise() {
        let mlp = tiny_mlp(3);
        let grad_out = [0.3, -0.7, 0.05];
        let mut ws = mlp.workspace(2);
        ws.set_batch(2);
        for b in 0..2 {
            ws.input_row_mut(b).copy_from_slice(&sample(b + 5));
        }
        mlp.forward_batch(&mut ws);
        for b in 0..2 {
            ws.grad_out_mut().row_mut(b).copy_from_slice(&grad_out);
        }
        let mut grads = mlp.zero_grads();
        mlp.backward_batch(&mut ws, &mut grads, true);

        for b in 0..2 {
            let x = sample(b + 5);
            let cache = mlp.forward(&x);
            let mut ref_grads = mlp.zero_grads();
            let gi = mlp.backward(&cache, &grad_out, &mut ref_grads);
            let batched: Vec<u64> = ws.grad_in().row(b).iter().map(|v| v.to_bits()).collect();
            let reference: Vec<u64> = gi.iter().map(|v| v.to_bits()).collect();
            assert_eq!(batched, reference, "row {b}");
        }
    }

    #[test]
    fn batch_of_one_training_is_bitwise_per_sample_training() {
        let mut a = tiny_mlp(7);
        let mut b = a.clone();
        let mut opt_a = Adam::new(5e-3);
        let mut opt_b = Adam::new(5e-3);
        let mut ws = b.workspace(1);
        let mut grads = b.zero_grads();
        for k in 0..20 {
            let x = sample(k);
            a.train_step_mse(&x, &x, &mut opt_a);
            ws.set_batch(1);
            ws.input_row_mut(0).copy_from_slice(&x);
            b.train_batch_mse_identity(&mut ws, &mut grads, &mut opt_b);
        }
        let pa: Vec<u64> = a.params_flat().iter().map(|v| v.to_bits()).collect();
        let pb: Vec<u64> = b.params_flat().iter().map(|v| v.to_bits()).collect();
        assert_eq!(pa, pb);
    }

    #[test]
    fn larger_batches_still_learn() {
        let mut mlp = tiny_mlp(9);
        let mut opt = Adam::new(1e-2);
        let mut ws = mlp.workspace(4);
        let mut grads = mlp.zero_grads();
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..300 {
            ws.set_batch(4);
            for b in 0..4 {
                ws.input_row_mut(b).copy_from_slice(&sample(b));
            }
            last = mlp.train_batch_mse_identity(&mut ws, &mut grads, &mut opt);
            first.get_or_insert(last);
        }
        let first = first.unwrap();
        assert!(last < first * 0.2, "batched training must descend: {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "exceeds workspace capacity")]
    fn growing_past_capacity_panics() {
        let mlp = tiny_mlp(1);
        let mut ws = mlp.workspace(2);
        ws.set_batch(3);
    }

    /// The inference-only workspace's forward pass is bitwise identical to
    /// the training workspace's (and hence, per
    /// `forward_batch_rows_match_per_sample_infer_bitwise`, to per-sample
    /// `Mlp::infer`) across batch resizes.
    #[test]
    fn inference_workspace_forward_matches_training_workspace_bitwise() {
        let mlp = tiny_mlp(5);
        let mut train_ws = mlp.workspace(4);
        let mut infer_ws = mlp.inference_workspace(4);
        assert!(train_ws.supports_training());
        assert!(!infer_ws.supports_training());
        for &batch in &[4usize, 1, 3, 2] {
            train_ws.set_batch(batch);
            infer_ws.set_batch(batch);
            for b in 0..batch {
                train_ws.input_row_mut(b).copy_from_slice(&sample(b + batch));
                infer_ws.input_row_mut(b).copy_from_slice(&sample(b + batch));
            }
            mlp.forward_batch(&mut train_ws);
            mlp.forward_batch(&mut infer_ws);
            for b in 0..batch {
                let a: Vec<u64> = train_ws.output_row(b).iter().map(|v| v.to_bits()).collect();
                let c: Vec<u64> = infer_ws.output_row(b).iter().map(|v| v.to_bits()).collect();
                assert_eq!(a, c, "batch {batch}, row {b}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs a training workspace")]
    fn backward_on_inference_workspace_panics() {
        let mlp = tiny_mlp(6);
        let mut ws = mlp.inference_workspace(2);
        ws.set_batch(1);
        ws.input_row_mut(0).copy_from_slice(&sample(0));
        mlp.forward_batch(&mut ws);
        let mut grads = mlp.zero_grads();
        mlp.backward_batch(&mut ws, &mut grads, false);
    }

    #[test]
    #[should_panic(expected = "no gradient buffers")]
    fn grad_out_on_inference_workspace_panics() {
        let mlp = tiny_mlp(6);
        let mut ws = mlp.inference_workspace(2);
        let _ = ws.grad_out_mut();
    }

    #[test]
    #[should_panic(expected = "workspace input width mismatch")]
    fn foreign_workspace_is_rejected() {
        let mlp = tiny_mlp(1);
        let mut rng = StdRng::seed_from_u64(0);
        let other =
            Mlp::new(&[4, 5, 3], &[Activation::Identity, Activation::Identity], &mut rng);
        let mut ws = other.workspace(1);
        mlp.forward_batch(&mut ws);
    }
}
