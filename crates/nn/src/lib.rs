//! # sad-nn
//!
//! A small, hand-rolled neural-network substrate: fully-connected layers
//! with analytically derived backpropagation, a handful of activations, MSE
//! losses, and Xavier initialization.
//!
//! Three of the paper's five models are neural networks — the 2-layer
//! autoencoder, the USAD adversarial autoencoder and N-BEATS (§IV-C). No
//! mature autodiff/deep-learning stack exists in this dependency universe,
//! so the backward passes are written by hand. Two design points matter for
//! the reproduction:
//!
//! * [`Mlp::backward`] accepts an arbitrary output gradient `∂L/∂ŷ` and
//!   returns the gradient with respect to the *input*. This is what lets
//!   USAD chain `∂‖x − AE₂(AE₁(x))‖²/∂θ_{AE₁}` through the second
//!   autoencoder, and lets N-BEATS propagate through its residual stacking.
//! * Parameters and gradients flatten to plain `[f64]` buffers
//!   ([`Mlp::params_flat`], [`MlpGrads::flatten`]) so any
//!   `sad_tensor::Optimizer` drives the update — mirroring the paper's
//!   `θ ← θ − Σ Opt(∂L/∂θ)` fine-tuning formulation.
//!
//! Every backward pass is verified against central finite differences in the
//! test suite (`grad_check`).

pub mod activation;
pub mod layer;
pub mod loss;
pub mod mlp;

pub use activation::Activation;
pub use layer::{Dense, DenseCache, DenseGrads};
pub use loss::{mse, mse_grad, sse, sse_grad};
pub use mlp::{Mlp, MlpCache, MlpGrads};
