//! # sad-nn
//!
//! A small, hand-rolled neural-network substrate: fully-connected layers
//! with analytically derived backpropagation, a handful of activations, MSE
//! losses, and Xavier initialization.
//!
//! Three of the paper's five models are neural networks — the 2-layer
//! autoencoder, the USAD adversarial autoencoder and N-BEATS (§IV-C). No
//! mature autodiff/deep-learning stack exists in this dependency universe,
//! so the backward passes are written by hand. Two design points matter for
//! the reproduction:
//!
//! * [`Mlp::backward`] accepts an arbitrary output gradient `∂L/∂ŷ` and
//!   returns the gradient with respect to the *input*. This is what lets
//!   USAD chain `∂‖x − AE₂(AE₁(x))‖²/∂θ_{AE₁}` through the second
//!   autoencoder, and lets N-BEATS propagate through its residual stacking.
//! * Parameters update **in place** through the segmented
//!   `sad_tensor::Optimizer` API ([`Mlp::apply_grads`]), bitwise identical
//!   to one flat step over [`Mlp::params_flat`] — mirroring the paper's
//!   `θ ← θ − Σ Opt(∂L/∂θ)` fine-tuning formulation without the
//!   flatten/unflatten copies.
//! * The streaming models train through the batched, zero-allocation
//!   workspace path in [`batch`] ([`Mlp::forward_batch`],
//!   [`Mlp::backward_batch`], [`MlpWorkspace`]), which packs minibatches
//!   into row-major matrices and drives the cache-blocked `sad-tensor`
//!   GEMM kernels; it reproduces the per-sample path bit for bit at batch
//!   size 1 (see `batch`'s module docs for the pinned summation order).
//!
//! Every backward pass is verified against central finite differences in the
//! test suite (`grad_check`).

pub mod activation;
pub mod batch;
pub mod infer_plan;
pub mod layer;
pub mod loss;
pub mod mlp;

pub use activation::Activation;
pub use batch::MlpWorkspace;
pub use infer_plan::{InferPlan, InferPlanWorkspace};
pub use layer::{Dense, DenseGrads};
pub use loss::{mse, mse_grad, sse, sse_grad};
pub use mlp::{Mlp, MlpCache, MlpGrads};
