//! f32 inference plan: a compiled, inference-only snapshot of an [`Mlp`].
//!
//! Fleet serving spends its steady state in [`Mlp::forward_batch`] — a pure
//! read of the trained f64 weights. At serving batch sizes the kernel is
//! memory-bound, so streaming the weights at half the bytes per element is
//! worth ~2× bandwidth; but training must stay f64 **bit-for-bit** (every
//! parity proof in the workspace depends on it). The resolution is a
//! separation of state:
//!
//! * the [`Mlp`] keeps sole ownership of the authoritative f64 parameters
//!   and every training/fine-tune path — untouched by this module;
//! * an [`InferPlan`] holds a *converted copy* of the weights/biases in
//!   `Matrix<f32>` form. It is rebuilt (`refresh`, allocation-free) only
//!   when the owner observes a training event — the same
//!   dirty-on-training-event hook that maintains fleet cohort membership —
//!   and serves every inference round in between.
//!
//! Plan outputs agree with the f64 forward pass to f32 relative accuracy
//! (asserted with explicit tolerances in `tests/infer_plan_tolerance.rs`);
//! they are **never** fed back into training.

use crate::activation::Activation;
use crate::mlp::Mlp;
use sad_tensor::Matrix;

/// One dense layer's converted inference state.
#[derive(Debug, Clone)]
struct PlanLayer {
    /// `out_dim x in_dim`, row-major — same layout as the f64 original.
    weights: Matrix<f32>,
    bias: Vec<f32>,
    activation: Activation,
}

/// f32-converted weights of one [`Mlp`], for inference only.
///
/// Create with [`Mlp::infer_plan`], re-sync after a training event with
/// [`InferPlan::refresh`] (allocation-free), and run batched forwards
/// through a reusable [`InferPlanWorkspace`].
#[derive(Debug, Clone)]
pub struct InferPlan {
    layers: Vec<PlanLayer>,
    /// Layer widths `[in, h₁, …, out]`.
    dims: Vec<usize>,
}

impl InferPlan {
    /// Builds a plan by converting every parameter of `mlp` to f32.
    pub fn new(mlp: &Mlp) -> Self {
        let layers = mlp
            .layers()
            .iter()
            .map(|layer| PlanLayer {
                weights: Matrix::from_precision(&layer.weights),
                bias: layer.bias.iter().map(|&b| b as f32).collect(),
                activation: layer.activation,
            })
            .collect();
        let mut dims = Vec::with_capacity(mlp.layers().len() + 1);
        dims.push(mlp.in_dim());
        for layer in mlp.layers() {
            dims.push(layer.out_dim());
        }
        Self { layers, dims }
    }

    /// Re-converts every parameter from `mlp` in place — the
    /// training-event hook. Performs **no heap allocation**.
    ///
    /// # Panics
    /// Panics if `mlp`'s architecture differs from the one the plan was
    /// built from (a fleet cohort never changes architecture, only values).
    pub fn refresh(&mut self, mlp: &Mlp) {
        assert_eq!(self.layers.len(), mlp.layers().len(), "infer plan layer count mismatch");
        for (plan, layer) in self.layers.iter_mut().zip(mlp.layers()) {
            plan.weights.convert_from(&layer.weights);
            assert_eq!(plan.bias.len(), layer.bias.len(), "infer plan bias width mismatch");
            for (o, &b) in plan.bias.iter_mut().zip(&layer.bias) {
                *o = b as f32;
            }
            plan.activation = layer.activation;
        }
    }

    /// `true` if `mlp` has the geometry this plan was built from.
    pub fn matches(&self, mlp: &Mlp) -> bool {
        self.layers.len() == mlp.layers().len()
            && self
                .layers
                .iter()
                .zip(mlp.layers())
                .all(|(p, l)| p.weights.shape() == l.weights.shape())
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.dims[0]
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        *self.dims.last().expect("non-empty")
    }

    /// Creates a workspace shaped for this plan with `max_batch` rows.
    pub fn workspace(&self, max_batch: usize) -> InferPlanWorkspace {
        InferPlanWorkspace::new(self, max_batch)
    }

    /// Batched f32 forward pass over the `ws.batch()` rows of `ws.input()`.
    ///
    /// Structurally identical to [`Mlp::forward_batch`] — one
    /// `X · Wᵀ` GEMM per layer ([`Matrix::matmul_transpose_b_into`], whose
    /// f32 instantiation runs the 8-lane pinned dot kernel) followed by an
    /// in-place bias add and activation per row. Performs no heap
    /// allocation.
    pub fn forward_batch(&self, ws: &mut InferPlanWorkspace) {
        ws.check_geometry(self);
        let batch = ws.batch;
        for (l, layer) in self.layers.iter().enumerate() {
            let (done, todo) = ws.acts.split_at_mut(l);
            let x = if l == 0 { &ws.input } else { &done[l - 1] };
            let act = &mut todo[0];
            x.matmul_transpose_b_into(&layer.weights, act);
            for b in 0..batch {
                let row = act.row_mut(b);
                for (o, bias) in row.iter_mut().zip(&layer.bias) {
                    *o += bias;
                }
                layer.activation.apply_slice_f32(row);
            }
        }
    }
}

/// Reusable input/activation buffers for [`InferPlan::forward_batch`] —
/// the f32 mirror of the inference-only [`crate::MlpWorkspace`].
#[derive(Debug, Clone)]
pub struct InferPlanWorkspace {
    dims: Vec<usize>,
    max_batch: usize,
    batch: usize,
    input: Matrix<f32>,
    acts: Vec<Matrix<f32>>,
}

impl InferPlanWorkspace {
    /// Creates a workspace for `plan` with room for `max_batch` rows.
    pub fn new(plan: &InferPlan, max_batch: usize) -> Self {
        assert!(max_batch > 0, "workspace needs at least one batch row");
        let acts = plan.dims[1..].iter().map(|&d| Matrix::zeros(max_batch, d)).collect();
        Self {
            input: Matrix::zeros(max_batch, plan.dims[0]),
            acts,
            max_batch,
            batch: max_batch,
            dims: plan.dims.clone(),
        }
    }

    /// Maximum number of rows the workspace was allocated for.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// Current logical batch size.
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Sets the logical batch size for the next forward pass. Within
    /// capacity this never reallocates ([`Matrix::resize_rows`]).
    ///
    /// # Panics
    /// Panics if `batch` is zero or exceeds [`Self::max_batch`].
    pub fn set_batch(&mut self, batch: usize) {
        assert!(batch > 0, "batch size must be positive");
        assert!(
            batch <= self.max_batch,
            "batch {batch} exceeds workspace capacity {}",
            self.max_batch
        );
        self.batch = batch;
        self.input.resize_rows(batch);
        for m in &mut self.acts {
            m.resize_rows(batch);
        }
    }

    /// Mutable input row `b`, for the caller to fill (already in f32).
    pub fn input_row_mut(&mut self, b: usize) -> &mut [f32] {
        self.input.row_mut(b)
    }

    /// The whole input matrix (`batch × in_dim`).
    pub fn input(&self) -> &Matrix<f32> {
        &self.input
    }

    /// Mutable input matrix — lets chained plans copy a previous plan's
    /// output in wholesale (e.g. USAD's encoder → decoder handoff).
    pub fn input_mut(&mut self) -> &mut Matrix<f32> {
        &mut self.input
    }

    /// The network output of the last forward pass (`batch × out_dim`).
    pub fn output(&self) -> &Matrix<f32> {
        self.acts.last().expect("non-empty")
    }

    /// Output row `b` of the last forward pass.
    pub fn output_row(&self, b: usize) -> &[f32] {
        self.acts.last().expect("non-empty").row(b)
    }

    fn check_geometry(&self, plan: &InferPlan) {
        assert_eq!(self.dims, plan.dims, "workspace/plan geometry mismatch");
    }
}

impl Mlp {
    /// Compiles an f32 inference plan from the current parameters (see
    /// [`InferPlan`]).
    pub fn infer_plan(&self) -> InferPlan {
        InferPlan::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Activation;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use sad_tensor::Sgd;

    fn tiny_mlp(seed: u64) -> Mlp {
        let mut rng = StdRng::seed_from_u64(seed);
        Mlp::new(&[6, 4, 6], &[Activation::Sigmoid, Activation::Identity], &mut rng)
    }

    fn sample(k: usize) -> Vec<f64> {
        (0..6).map(|j| ((k * 6 + j) as f64 * 0.31).sin()).collect()
    }

    fn assert_close_to_f64(plan_out: &[f32], mlp_out: &[f64], tol: f64, ctx: &str) {
        assert_eq!(plan_out.len(), mlp_out.len());
        for (j, (&p, &m)) in plan_out.iter().zip(mlp_out).enumerate() {
            let err = (p as f64 - m).abs();
            let bound = tol * m.abs().max(1.0);
            assert!(err <= bound, "{ctx}[{j}]: f32 {p} vs f64 {m} (err {err:.3e})");
        }
    }

    #[test]
    fn plan_forward_matches_f64_infer_within_tolerance() {
        let mlp = tiny_mlp(3);
        let plan = mlp.infer_plan();
        assert!(plan.matches(&mlp));
        assert_eq!(plan.in_dim(), 6);
        assert_eq!(plan.out_dim(), 6);
        let mut ws = plan.workspace(4);
        ws.set_batch(4);
        for b in 0..4 {
            for (o, &v) in ws.input_row_mut(b).iter_mut().zip(&sample(b)) {
                *o = v as f32;
            }
        }
        plan.forward_batch(&mut ws);
        for b in 0..4 {
            let reference = mlp.infer(&sample(b));
            assert_close_to_f64(ws.output_row(b), &reference, 1e-5, "row");
        }
    }

    #[test]
    fn refresh_tracks_training_without_allocating_new_shapes() {
        let mut mlp = tiny_mlp(5);
        let mut plan = mlp.infer_plan();
        let mut opt = Sgd::new(0.05);
        let x = sample(1);
        for _ in 0..50 {
            mlp.train_step_mse(&x, &x, &mut opt);
        }
        // Stale plan: built from the pre-training parameters.
        let mut ws = plan.workspace(1);
        ws.set_batch(1);
        for (o, &v) in ws.input_row_mut(0).iter_mut().zip(&x) {
            *o = v as f32;
        }
        plan.forward_batch(&mut ws);
        let stale: Vec<f32> = ws.output_row(0).to_vec();

        plan.refresh(&mlp);
        plan.forward_batch(&mut ws);
        let fresh = ws.output_row(0);
        let reference = mlp.infer(&x);
        assert_close_to_f64(fresh, &reference, 1e-5, "refreshed");
        // Training moved the weights, so the stale outputs must differ.
        assert!(
            stale.iter().zip(fresh).any(|(a, b)| a != b),
            "refresh must pick up the trained parameters",
        );
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn refresh_rejects_foreign_architecture() {
        let mlp = tiny_mlp(7);
        let mut rng = StdRng::seed_from_u64(0);
        let other = Mlp::new(
            &[6, 3, 3, 6],
            &[Activation::Tanh, Activation::Tanh, Activation::Identity],
            &mut rng,
        );
        let mut plan = mlp.infer_plan();
        plan.refresh(&other);
    }

    #[test]
    fn workspace_resize_stays_within_capacity() {
        let mlp = tiny_mlp(9);
        let plan = mlp.infer_plan();
        let mut ws = plan.workspace(8);
        for &b in &[8usize, 1, 5, 8] {
            ws.set_batch(b);
            assert_eq!(ws.batch(), b);
            assert_eq!(ws.output().rows(), b);
        }
        assert_eq!(ws.max_batch(), 8);
    }
}
