//! Fully-connected layer with hand-derived backpropagation.

use crate::activation::Activation;
use rand::Rng;
use sad_tensor::Matrix;

/// A fully-connected layer `y = act(W x + b)`.
///
/// `W` is `out_dim x in_dim`; the paper writes the affine map as
/// `FC_i(x) = σ(x * W_i + b_i)` (§IV-C) — identical up to transposition.
#[derive(Debug, Clone)]
pub struct Dense {
    /// Weight matrix, `out_dim x in_dim`.
    pub weights: Matrix,
    /// Bias vector, length `out_dim`.
    pub bias: Vec<f64>,
    /// Element-wise nonlinearity.
    pub activation: Activation,
}

/// Parameter gradients of one layer.
#[derive(Debug, Clone)]
pub struct DenseGrads {
    /// `∂L/∂W`, same shape as the weights.
    pub weights: Matrix,
    /// `∂L/∂b`.
    pub bias: Vec<f64>,
}

impl Dense {
    /// Creates a layer with Xavier-uniform initialized weights and zero bias.
    pub fn xavier(in_dim: usize, out_dim: usize, activation: Activation, rng: &mut impl Rng) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "layer dimensions must be positive");
        let bound = (6.0 / (in_dim + out_dim) as f64).sqrt();
        let weights = Matrix::from_fn(out_dim, in_dim, |_, _| rng.random_range(-bound..bound));
        Self { weights, bias: vec![0.0; out_dim], activation }
    }

    /// Input dimensionality.
    pub fn in_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimensionality.
    pub fn out_dim(&self) -> usize {
        self.weights.rows()
    }

    /// Number of scalar parameters (`out*in + out`).
    pub fn num_params(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    /// Forward pass without caching (inference only).
    pub fn infer(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.in_dim(), "Dense infer: input dim mismatch");
        let mut out = self.weights.matvec(x);
        for (o, b) in out.iter_mut().zip(&self.bias) {
            *o += b;
        }
        self.activation.apply_slice(&mut out);
        out
    }

    /// Backward pass from explicit forward state.
    ///
    /// `input` is the vector the layer was applied to, `output` the
    /// post-activation result of that application (both are owned once by
    /// the caller's cache — the layer never duplicates them). Given
    /// `∂L/∂y` (`grad_out`), accumulates parameter gradients into `grads`
    /// and returns `∂L/∂x`.
    pub fn backward(
        &self,
        input: &[f64],
        output: &[f64],
        grad_out: &[f64],
        grads: &mut DenseGrads,
    ) -> Vec<f64> {
        assert_eq!(grad_out.len(), self.out_dim(), "Dense backward: grad dim mismatch");
        assert_eq!(input.len(), self.in_dim(), "Dense backward: input dim mismatch");
        assert_eq!(output.len(), self.out_dim(), "Dense backward: output dim mismatch");
        // δ = ∂L/∂(Wx+b) = grad_out ⊙ act'(y)
        let delta: Vec<f64> = grad_out
            .iter()
            .zip(output)
            .map(|(&g, &y)| g * self.activation.derivative_from_output(y))
            .collect();
        // ∂L/∂W = δ xᵀ  (outer product), ∂L/∂b = δ
        for (i, &d) in delta.iter().enumerate() {
            if d != 0.0 {
                let row = grads.weights.row_mut(i);
                for (w, &xi) in row.iter_mut().zip(input) {
                    *w += d * xi;
                }
            }
            grads.bias[i] += d;
        }
        // ∂L/∂x = Wᵀ δ
        self.weights.matvec_t(&delta)
    }

    /// Zeroed gradient buffers shaped like this layer.
    pub fn zero_grads(&self) -> DenseGrads {
        DenseGrads {
            weights: Matrix::zeros(self.weights.rows(), self.weights.cols()),
            bias: vec![0.0; self.bias.len()],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn infer_linear_known_values() {
        let layer = Dense {
            weights: Matrix::from_rows(&[&[1.0, 2.0], &[0.0, -1.0]]),
            bias: vec![0.5, 1.0],
            activation: Activation::Identity,
        };
        assert_eq!(layer.infer(&[1.0, 1.0]), vec![3.5, 0.0]);
    }

    #[test]
    fn xavier_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(0);
        let layer = Dense::xavier(10, 10, Activation::Sigmoid, &mut rng);
        let bound = (6.0 / 20.0_f64).sqrt();
        assert!(layer.weights.as_slice().iter().all(|w| w.abs() <= bound));
        assert!(layer.bias.iter().all(|&b| b == 0.0));
    }

    /// Central finite-difference check of all gradients of a single layer.
    #[test]
    fn grad_check_single_layer() {
        let mut rng = StdRng::seed_from_u64(42);
        for act in [Activation::Identity, Activation::Sigmoid, Activation::Tanh] {
            let mut layer = Dense::xavier(3, 2, act, &mut rng);
            let x = [0.3, -0.5, 0.8];
            let target = [0.1, -0.2];
            // L = 0.5 * ||y - target||^2  =>  dL/dy = y - target
            let y = layer.infer(&x);
            let grad_out: Vec<f64> = y.iter().zip(&target).map(|(a, b)| a - b).collect();
            let mut grads = layer.zero_grads();
            let grad_in = layer.backward(&x, &y, &grad_out, &mut grads);

            let eps = 1e-6;
            let loss = |l: &Dense, x: &[f64]| -> f64 {
                let y = l.infer(x);
                0.5 * y.iter().zip(&target).map(|(a, b)| (a - b) * (a - b)).sum::<f64>()
            };
            // Weights.
            for i in 0..2 {
                for j in 0..3 {
                    let orig = layer.weights[(i, j)];
                    layer.weights[(i, j)] = orig + eps;
                    let lp = loss(&layer, &x);
                    layer.weights[(i, j)] = orig - eps;
                    let lm = loss(&layer, &x);
                    layer.weights[(i, j)] = orig;
                    let fd = (lp - lm) / (2.0 * eps);
                    assert!(
                        (fd - grads.weights[(i, j)]).abs() < 1e-5,
                        "{act:?} dW[{i}{j}] fd {fd} vs {}",
                        grads.weights[(i, j)]
                    );
                }
            }
            // Bias.
            for i in 0..2 {
                let orig = layer.bias[i];
                layer.bias[i] = orig + eps;
                let lp = loss(&layer, &x);
                layer.bias[i] = orig - eps;
                let lm = loss(&layer, &x);
                layer.bias[i] = orig;
                let fd = (lp - lm) / (2.0 * eps);
                assert!((fd - grads.bias[i]).abs() < 1e-5, "{act:?} db[{i}]");
            }
            // Input gradient.
            for k in 0..3 {
                let mut xp = x;
                xp[k] += eps;
                let mut xm = x;
                xm[k] -= eps;
                let fd = (loss(&layer, &xp) - loss(&layer, &xm)) / (2.0 * eps);
                assert!((fd - grad_in[k]).abs() < 1e-5, "{act:?} dx[{k}]");
            }
        }
    }

    #[test]
    #[should_panic(expected = "input dim mismatch")]
    fn wrong_input_dim_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::xavier(3, 2, Activation::Identity, &mut rng);
        let _ = layer.infer(&[1.0]);
    }

    #[test]
    fn num_params_counts_weights_and_bias() {
        let mut rng = StdRng::seed_from_u64(1);
        let layer = Dense::xavier(5, 4, Activation::Identity, &mut rng);
        assert_eq!(layer.num_params(), 5 * 4 + 4);
    }
}
