//! Concept-drift adaptation: watch the μ/σ-Change detector fire when the
//! regime shifts and compare a fine-tuned model fork against a frozen one —
//! a miniature of the paper's Figure 1 experiment.
//!
//! ```sh
//! cargo run --release --example drift_adaptation
//! ```

use streamad::core::{
    Detector, DetectorConfig, MovingAverage, MuSigmaChange, SlidingWindowSet,
};
use streamad::models::TwoLayerAe;

fn main() {
    // Stream: an oscillator whose amplitude and mean shift at t = 700.
    let series: Vec<Vec<f64>> = (0..1400)
        .map(|t| {
            let x = t as f64 * 0.2;
            if t < 700 {
                vec![x.sin(), (x * 0.7).cos()]
            } else {
                vec![3.0 + 2.5 * x.sin(), 3.0 + 2.5 * (x * 0.7).cos()]
            }
        })
        .collect();

    let config = DetectorConfig {
        window: 12,
        channels: 2,
        warmup: 300,
        initial_epochs: 15,
        fine_tune_epochs: 3,
    };
    let mut detector = Detector::new(
        config,
        Box::new(TwoLayerAe::for_dim(24, 1)),
        Box::new(SlidingWindowSet::new(40)),
        Box::new(MuSigmaChange::new()),
        Box::new(MovingAverage::new(10)),
    );

    // Stream up to just past the drift, forking the detector the moment the
    // first fine-tune happens.
    let mut frozen: Option<Detector> = None;
    let mut drift_at = None;
    for (t, s) in series.iter().enumerate().take(760) {
        if frozen.is_none() && t >= 690 {
            // Keep a pre-adaptation copy right before the drift hits and
            // freeze its model (the paper's "not finetuned" arm).
            let mut f = detector.clone();
            f.freeze_model();
            frozen = Some(f);
        }
        if let Some(out) = detector.step(s) {
            if out.fine_tuned && drift_at.is_none() && t > 600 {
                drift_at = Some(t);
            }
        }
        if let (Some(f), true) = (&mut frozen, t >= 690) {
            f.step(s);
        }
    }
    match drift_at {
        Some(t) => println!("drift detected and model fine-tuned at t = {t}"),
        None => println!("no drift trigger before t = 760 (unexpected)"),
    }

    // Continue both forks through the new regime; the adapted model should
    // report lower nonconformity.
    let mut frozen = frozen.expect("fork was taken");
    let (mut sum_adapted, mut sum_frozen, mut n) = (0.0, 0.0, 0usize);
    for s in series.iter().skip(760) {
        let a = detector.step(s);
        // The frozen fork must not adapt: strip its fine-tuning by ignoring
        // drift (we simply don't let it see enough steps to matter — its
        // drift detector was already re-anchored at the fork point).
        let f = frozen.step(s);
        if let (Some(a), Some(f)) = (a, f) {
            sum_adapted += a.nonconformity;
            sum_frozen += f.nonconformity;
            n += 1;
        }
    }
    let avg_adapted = sum_adapted / n as f64;
    let avg_frozen = sum_frozen / n as f64;
    println!("average nonconformity in the new regime:");
    println!("  fine-tuned fork: {avg_adapted:.4}");
    println!("  frozen fork:     {avg_frozen:.4}");
    println!(
        "=> fine-tuning after drift {} the model's fit to the new regime.",
        if avg_adapted < avg_frozen { "improves" } else { "did not improve" }
    );
}
