//! Interpretable N-BEATS: the paper (§IV-C) highlights that projecting onto
//! well-chosen basis vectors "can show the contribution of well known
//! elements in time series analysis, such as seasonality and trend". This
//! example fits the trend+seasonal configuration on a trending oscillation
//! and prints each block's forecast attribution.
//!
//! ```sh
//! cargo run --release --example interpretable_forecasting
//! ```

use streamad::core::{FeatureVector, ModelOutput, StreamModel};
use streamad::models::NBeats;

fn main() {
    // Signal: linear trend + one dominant seasonal component.
    let w = 24;
    let series: Vec<f64> =
        (0..400).map(|t| 0.02 * t as f64 + 1.5 * (t as f64 * 0.26).sin()).collect();
    let windows: Vec<FeatureVector> =
        series.windows(w).map(|chunk| FeatureVector::new(chunk.to_vec(), w, 1)).collect();

    let mut model = NBeats::interpretable(24, 3, 4, 2e-3, 11);
    model.fit_initial(&windows, 150);

    let probe = &windows[300];
    let forecast = match model.predict(probe) {
        ModelOutput::Forecast(f) => f[0],
        _ => unreachable!(),
    };
    let truth = probe.last_step()[0];
    println!("forecast {forecast:.3} vs actual {truth:.3}");

    println!("\nper-block attribution (standardized space):");
    let parts = model.decompose(probe);
    for ((kind, theta), (backcast, fc)) in model.plan().to_vec().iter().zip(&parts) {
        let backcast_energy: f64 =
            backcast.iter().map(|v| v * v).sum::<f64>() / backcast.len() as f64;
        println!(
            "  {:?} block (θ-dim {}): forecast contribution {:+.3}, backcast energy {:.3}",
            kind, theta, fc[0], backcast_energy
        );
    }
    let trend_part = parts[0].1[0];
    let seasonal_part = parts[1].1[0];
    println!("\nthe {} block dominates this window's forecast.", if trend_part.abs() > seasonal_part.abs() {
        "trend"
    } else {
        "seasonal"
    });
}
