//! Server-fleet monitoring on an SMD-like 38-channel stream: compare the
//! three Task-1 training-set strategies with everything else held fixed —
//! a miniature of the paper's §V-B ARES observation.
//!
//! ```sh
//! cargo run --release --example server_fleet
//! ```

use streamad::core::{AlgorithmSpec, DetectorConfig, ModelKind, ScoreKind, Task1, Task2};
use streamad::data::{smd_like, CorpusParams};
use streamad::metrics::{best_f1, pr_auc};
use streamad::models::{build_detector, BuildParams};

fn main() {
    let mut corpus_params = CorpusParams::small();
    corpus_params.length = 2000;
    corpus_params.n_series = 1;
    let corpus = smd_like(7, corpus_params);
    let series = &corpus.series[0];
    println!(
        "corpus {}: {} steps x {} channels, {} anomalies",
        corpus.name,
        series.len(),
        series.channels(),
        series.anomaly_intervals().len()
    );

    let config = DetectorConfig {
        window: 12,
        channels: series.channels(),
        warmup: 400,
        initial_epochs: 6,
        fine_tune_epochs: 1,
    };

    for task1 in [Task1::SlidingWindow, Task1::UniformReservoir, Task1::AnomalyAwareReservoir] {
        let spec = AlgorithmSpec { model: ModelKind::TwoLayerAe, task1, task2: Task2::MuSigma };
        let params = BuildParams::new(config.clone())
            .with_capacity(40)
            .with_score(ScoreKind::AnomalyLikelihood);
        let mut det = build_detector(spec, &params);
        let (scores, offset) = det.score_series(&series.data);
        let labels = &series.labels[offset..];
        let (_th, prec, rec, f1) = best_f1(&scores, labels, 40);
        let auc = pr_auc(&scores, labels, 40);
        println!(
            "{:<6} prec {prec:.2}  rec {rec:.2}  f1 {f1:.2}  auc {auc:.2}  fine-tunes {}",
            task1.label(),
            det.fine_tune_count()
        );
    }
    println!("(the anomaly-aware reservoir tends to win on AUC by keeping anomalous");
    println!(" windows out of the training set — the paper's §V-B observation)");
}
