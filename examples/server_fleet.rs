//! Server-fleet monitoring through the sharded
//! [`streamad::fleet::DetectorFleet`], in the two regimes that bound its
//! batched NN path:
//!
//! 1. **Replica fleet under steady load** — one AE warm-started on a
//!    reference stream and rolled out as N identical clones (replicas
//!    behind a load balancer). Weight-identical streams stay one batching
//!    cohort, so every round packs the whole fleet into a single
//!    `forward_batch`; with no drift events the serving cost is pure
//!    inference and batching wins outright. Timed batched vs per-stream.
//!
//! 2. **Heterogeneous fleet** — the same clone rolled out to six
//!    *different* SMD-like servers. Each server drifts on its own
//!    schedule, every fine-tune splits that clone off the shared cohort,
//!    and batching degrades gracefully to batch-of-1 passes while
//!    training dominates the bill. The fleet's counters (rows/pass,
//!    cohort rebuilds) make the eligibility rule visible: same
//!    architecture ⇒ same group, same weights ⇒ same forward pass.
//!
//! ```sh
//! cargo run --release --example server_fleet
//! ```

use std::time::Instant;
use streamad::core::{AlgorithmSpec, Detector, DetectorConfig, ModelKind, ScoreKind, Task1, Task2};
use streamad::data::{smd_like, CorpusParams};
use streamad::fleet::{DetectorFleet, FleetConfig, FleetStats};
use streamad::models::{build_detector, BuildParams};

const CHANNELS: usize = 38;
const WINDOW: usize = 10;
const WARMUP: usize = 300;
const REPLICAS: usize = 16;

/// Steady multivariate load, periodic with the detector window: the
/// training-set statistics are constant, so no drift fires and serving is
/// pure inference.
fn steady_stream(len: usize) -> Vec<Vec<f64>> {
    (0..len)
        .map(|t| {
            let phase = std::f64::consts::TAU * (t % WINDOW) as f64 / WINDOW as f64;
            (0..CHANNELS)
                .map(|c| (phase + c as f64 * 0.37).sin() * (1.0 + c as f64 * 0.1) + c as f64)
                .collect()
        })
        .collect()
}

fn warm_template(reference: &[Vec<f64>]) -> Detector {
    let config = DetectorConfig {
        window: WINDOW,
        channels: CHANNELS,
        warmup: WARMUP,
        initial_epochs: 6,
        fine_tune_epochs: 1,
    };
    let spec = AlgorithmSpec {
        model: ModelKind::TwoLayerAe,
        task1: Task1::SlidingWindow,
        task2: Task2::MuSigma,
    };
    let params = BuildParams::new(config)
        .with_capacity(40)
        .with_score(ScoreKind::AnomalyLikelihood)
        .with_seed(42);
    let mut template = build_detector(spec, &params);
    for s in &reference[..=WARMUP] {
        template.step(s);
    }
    assert!(template.is_warmed_up(), "template must leave warm-up before rollout");
    template
}

/// Serves `streams[i][t]` round by round; returns (stats, elapsed secs,
/// alerts at score >= 0.9).
fn serve(
    template: &Detector,
    streams: &[&[Vec<f64>]],
    batching: bool,
) -> (FleetStats, f64, usize) {
    let detectors = streams.iter().map(|_| template.clone()).collect();
    let mut fleet =
        DetectorFleet::new(detectors, FleetConfig { batching, ..FleetConfig::default() });
    let rounds = streams.iter().map(|s| s.len()).min().unwrap_or(0);
    let mut out = Vec::new();
    let mut alerts = 0usize;
    let start = Instant::now();
    for t in 0..rounds {
        for (i, stream) in streams.iter().enumerate() {
            assert!(fleet.enqueue(i, &stream[t]));
        }
        fleet.drain_round(&mut out);
        alerts += out.iter().flatten().filter(|o| o.anomaly_score >= 0.9).count();
    }
    (fleet.stats(), start.elapsed().as_secs_f64(), alerts)
}

fn main() {
    // ---- Regime 1: replica fleet under steady load.
    let steady = steady_stream(WARMUP + 1 + 600);
    let template = warm_template(&steady);
    let load = &steady[WARMUP + 1..];
    let replicas: Vec<&[Vec<f64>]> = vec![load; REPLICAS];
    println!("replica fleet: {REPLICAS} identical {CHANNELS}-channel streams x {} rounds", load.len());
    let mut batched_secs = f64::INFINITY;
    for batching in [true, false] {
        let (stats, secs, _) = serve(&template, &replicas, batching);
        let mode = if batching { "batched   " } else { "per-stream" };
        println!(
            "  {mode}  {:>6} steps in {:>7.1} ms  ({:>7.0} steps/s)",
            stats.steps,
            secs * 1e3,
            stats.steps as f64 / secs,
        );
        if batching {
            batched_secs = secs;
            println!(
                "              {} rows over {} shared passes ({:.1} rows/pass), {} cohort rebuilds",
                stats.batched_rows,
                stats.batches,
                stats.batched_rows as f64 / stats.batches.max(1) as f64,
                stats.cohort_rebuilds,
            );
        } else {
            println!("              speedup from batching: {:.2}x", secs / batched_secs);
        }
    }

    // ---- Regime 2: the same rollout across six different servers.
    let corpus_params =
        CorpusParams { length: 900, n_series: 6, anomalies_per_series: 2, with_drift: false };
    let corpus = smd_like(7, corpus_params);
    let smd_template = warm_template(&corpus.series[0].data);
    let servers: Vec<&[Vec<f64>]> =
        corpus.series.iter().map(|s| &s.data[WARMUP + 1..]).collect();
    let (stats, secs, alerts) = serve(&smd_template, &servers, true);
    println!(
        "\nheterogeneous fleet: {} distinct {} servers, batching on",
        servers.len(),
        corpus.name,
    );
    println!(
        "  {} steps in {:.1} ms; {:.1} rows/pass, {} cohort rebuilds, {} alerts",
        stats.steps,
        secs * 1e3,
        stats.batched_rows as f64 / stats.batches.max(1) as f64,
        stats.cohort_rebuilds,
        alerts,
    );
    println!("  (each server's fine-tunes split its clone off the shared cohort — the");
    println!("   eligibility rule: same architecture => same group, same weights => same pass)");
    println!("\n(all modes emit bit-identical scores — fleet/tests/fleet_parity.rs)");
}
