//! Quickstart: assemble one streaming detector, feed it a stream with a
//! planted anomaly, and watch the anomaly score react.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use streamad::core::{paper_algorithms, DetectorConfig, ModelKind, Task1, Task2};
use streamad::models::{build_detector, BuildParams};

fn main() {
    // Pick USAD / sliding window / μσ-Change from the paper's Table I grid.
    let spec = paper_algorithms()
        .into_iter()
        .find(|s| {
            s.model == ModelKind::Usad
                && s.task1 == Task1::SlidingWindow
                && s.task2 == Task2::MuSigma
        })
        .expect("spec is part of the Table I grid");
    println!("algorithm: {}", spec.label());

    // A 2-channel stream: two coupled oscillators.
    let series: Vec<Vec<f64>> = (0..1200)
        .map(|t| {
            let x = t as f64 * 0.15;
            vec![x.sin() + 0.05 * (x * 7.3).sin(), (x * 0.6).cos()]
        })
        .collect();

    // Plant an anomaly: channel 0 flatlines for 30 steps.
    let mut series = series;
    for row in series.iter_mut().take(930).skip(900) {
        row[0] = 0.42;
    }

    let config = DetectorConfig {
        window: 16,
        channels: 2,
        warmup: 300,
        initial_epochs: 10,
        fine_tune_epochs: 1,
    };
    let mut detector = build_detector(spec, &BuildParams::new(config).with_capacity(40));

    let mut peak_in_anomaly: f64 = 0.0;
    let mut baseline_sum = 0.0;
    let mut baseline_n = 0usize;
    for (t, s) in series.iter().enumerate() {
        let Some(out) = detector.step(s) else { continue };
        if (900..950).contains(&t) {
            peak_in_anomaly = peak_in_anomaly.max(out.anomaly_score);
        } else if t > 400 {
            baseline_sum += out.anomaly_score;
            baseline_n += 1;
        }
        if out.fine_tuned {
            println!("t={t:4}: concept drift detected -> model fine-tuned");
        }
    }

    let baseline = baseline_sum / baseline_n.max(1) as f64;
    println!("baseline anomaly score (normal regime): {baseline:.3}");
    println!("peak anomaly score inside the planted flatline: {peak_in_anomaly:.3}");
    // The anomaly likelihood hovers around 0.5 on a steady regime (Q(0)),
    // so judge separation additively.
    if peak_in_anomaly > baseline + 0.3 {
        println!("=> the detector flags the planted anomaly.");
    } else {
        println!("=> weak separation; try more warm-up or a different algorithm.");
    }
}
