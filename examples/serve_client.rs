//! Replay client for `streamad serve`: streams labelled series as wire
//! frames — over TCP to a listening server, or to stdout for piping into
//! `serve --stdin`. The encoding itself is the library's reusable replay
//! client ([`streamad::ingest::replay_interleaved`] over a
//! [`streamad::ingest::FrameWriter`]), the same building block the parity
//! suite and the `ingest_throughput` bench drive.
//!
//! With a CSV file, every wire stream replays the file verbatim (ids
//! `0..N` — identical replicas, so the server fleet stays in one batching
//! cohort). Without one, each stream gets its own series of a synthetic
//! SMD-like corpus (38 channels, heterogeneous servers).
//!
//! ```sh
//! # terminal 1: a server that exits after one connection
//! streamad serve --listen 127.0.0.1:7650 --warmup 200 --max-conns 1
//! # terminal 2: eight synthetic servers over TCP
//! cargo run --release --example serve_client -- --connect 127.0.0.1:7650 --streams 8
//!
//! # or pipe over stdin, CSV framing:
//! cargo run --release --example serve_client -- data.csv --csv \
//!   | streamad serve --stdin --csv --warmup 200
//! ```

use std::io::{BufWriter, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use streamad::data::csv::load_csv;
use streamad::data::{smd_like, CorpusParams, LabeledSeries};
use streamad::ingest::{replay_interleaved, FrameWriter, Framing};

fn run() -> Result<(), String> {
    let mut path: Option<String> = None;
    let mut connect: Option<String> = None;
    let mut streams: usize = 4;
    let mut length: usize = 600;
    let mut framing = Framing::Binary;
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        let mut value =
            |name: &str| iter.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--connect" => connect = Some(value("--connect")?),
            "--streams" => {
                streams = value("--streams")?.parse().map_err(|e| format!("--streams: {e}"))?;
                if streams == 0 {
                    return Err("--streams needs at least one stream".into());
                }
            }
            "--length" => {
                length = value("--length")?.parse().map_err(|e| format!("--length: {e}"))?
            }
            "--csv" => framing = Framing::Csv,
            "--help" | "-h" => {
                return Err("usage: serve_client [data.csv] [--connect ADDR] [--streams N] \
                            [--length N] [--csv]"
                    .into())
            }
            other if !other.starts_with('-') && path.is_none() => path = Some(other.to_string()),
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }

    // One source per wire stream: a CSV replays as N identical replicas,
    // the synthetic corpus gives every stream its own server.
    let sources: Vec<LabeledSeries> = match &path {
        Some(p) => {
            let series = load_csv(p).map_err(|e| format!("failed to load {p}: {e}"))?;
            vec![series; streams]
        }
        None => {
            let params = CorpusParams {
                length,
                n_series: streams,
                anomalies_per_series: 2,
                with_drift: false,
            };
            smd_like(7, params).series
        }
    };
    let pairs: Vec<(u64, &LabeledSeries)> =
        sources.iter().enumerate().map(|(i, s)| (i as u64, s)).collect();

    let sink: Box<dyn Write> = match &connect {
        Some(addr) => Box::new(
            TcpStream::connect(addr).map_err(|e| format!("could not connect {addr}: {e}"))?,
        ),
        None => Box::new(std::io::stdout().lock()),
    };
    let mut writer = FrameWriter::new(BufWriter::new(sink), framing);
    let frames =
        replay_interleaved(&mut writer, &pairs).map_err(|e| format!("replay failed: {e}"))?;
    writer.flush().map_err(|e| format!("flush failed: {e}"))?;
    eprintln!(
        "replayed {frames} frames across {} streams ({} framing) to {}",
        pairs.len(),
        match framing {
            Framing::Binary => "binary",
            Framing::Csv => "csv",
        },
        connect.as_deref().unwrap_or("stdout"),
    );
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}
