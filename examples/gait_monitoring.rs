//! Wearable-device monitoring: detect freezing-of-gait episodes in a
//! Daphnet-like 9-channel accelerometer stream — the paper's motivating
//! "automatic monitoring of devices" scenario.
//!
//! Runs two Table I algorithms over the corpus and reports all five paper
//! metrics for each, demonstrating the evaluation pipeline end to end.
//!
//! ```sh
//! cargo run --release --example gait_monitoring
//! ```

use streamad::core::{paper_algorithms, DetectorConfig, ModelKind, ScoreKind, Task1, Task2};
use streamad::data::{daphnet_like, CorpusParams};
use streamad::metrics::{best_f1, nab_score, pr_auc, vus_pr};
use streamad::models::{build_detector, BuildParams};

fn main() {
    let mut corpus_params = CorpusParams::small();
    corpus_params.length = 2400;
    corpus_params.n_series = 1;
    let corpus = daphnet_like(42, corpus_params);
    let series = &corpus.series[0];
    println!(
        "corpus {corpus_name}: series {name}, {len} steps x {n} channels, {a} anomaly episodes",
        corpus_name = corpus.name,
        name = series.name,
        len = series.len(),
        n = series.channels(),
        a = series.anomaly_intervals().len()
    );

    let specs: Vec<_> = paper_algorithms()
        .into_iter()
        .filter(|s| {
            (s.model == ModelKind::TwoLayerAe || s.model == ModelKind::OnlineArima)
                && s.task1 == Task1::AnomalyAwareReservoir
                && s.task2 == Task2::MuSigma
        })
        .collect();

    let config = DetectorConfig {
        window: 20,
        channels: series.channels(),
        warmup: 500,
        initial_epochs: 8,
        fine_tune_epochs: 1,
    };
    let params = BuildParams::new(config)
        .with_capacity(40)
        .with_score(ScoreKind::AnomalyLikelihood);

    for spec in specs {
        let mut det = build_detector(spec, &params);
        let (scores, offset) = det.score_series(&series.data);
        let labels = &series.labels[offset..];
        let (th, prec, rec, f1) = best_f1(&scores, labels, 40);
        let auc = pr_auc(&scores, labels, 40);
        let vus = vus_pr(&scores, labels, 20, 40);
        let pred: Vec<bool> = scores.iter().map(|&s| s >= th).collect();
        let nab = nab_score(&pred, labels).score;
        println!(
            "{label:<28} prec {prec:.2}  rec {rec:.2}  f1 {f1:.2}  auc {auc:.2}  vus {vus:.2}  nab {nab:.2}  (fine-tunes: {ft})",
            label = spec.label(),
            ft = det.fine_tune_count()
        );
    }
}
