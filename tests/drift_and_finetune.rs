//! Integration tests for the paper's drift story: Task-2 detectors fire
//! near injected drift, and fine-tuning after drift (Figure 1) widens the
//! anomaly/normal nonconformity gap.

use streamad::core::{
    Detector, DetectorConfig, KswinDetector, MovingAverage, MuSigmaChange, SlidingWindowSet,
};
use streamad::data::{exathlon_like, CorpusParams};
use streamad::models::{TwoLayerAe, Usad};

/// Stream with a hard mean+amplitude shift at `shift_at`.
fn shifted_stream(len: usize, shift_at: usize) -> Vec<Vec<f64>> {
    (0..len)
        .map(|t| {
            let x = t as f64 * 0.17;
            if t < shift_at {
                vec![x.sin(), (x * 0.8).cos()]
            } else {
                vec![4.0 + 3.0 * x.sin(), 4.0 + 3.0 * (x * 0.8).cos()]
            }
        })
        .collect()
}

fn ae_detector(drift: Box<dyn streamad::core::DriftDetector>) -> Detector {
    let config = DetectorConfig {
        window: 10,
        channels: 2,
        warmup: 250,
        initial_epochs: 12,
        fine_tune_epochs: 2,
    };
    Detector::new(
        config,
        Box::new(TwoLayerAe::for_dim(20, 5)),
        Box::new(SlidingWindowSet::new(40)),
        drift,
        Box::new(MovingAverage::new(8)),
    )
}

#[test]
fn mu_sigma_fires_near_injected_shift() {
    let series = shifted_stream(1200, 700);
    let mut det = ae_detector(Box::new(MuSigmaChange::new()));
    det.run(&series);
    let first_after_shift = det.drift_times().iter().find(|&&t| t >= 700);
    assert!(
        matches!(first_after_shift, Some(&t) if t < 780),
        "μ/σ must fire shortly after the shift, drift times: {:?}",
        det.drift_times()
    );
}

#[test]
fn kswin_fires_near_injected_shift() {
    let series = shifted_stream(1200, 700);
    let mut det = ae_detector(Box::new(KswinDetector::new(0.01)));
    det.run(&series);
    let first_after_shift = det.drift_times().iter().find(|&&t| t >= 700);
    assert!(
        matches!(first_after_shift, Some(&t) if t < 800),
        "KSWIN must fire shortly after the shift, drift times: {:?}",
        det.drift_times()
    );
}

#[test]
fn mu_sigma_and_kswin_agree_on_first_trigger() {
    // The paper's §V-B headline: the two strategies are nearly identical on
    // training-set drift.
    let series = shifted_stream(1200, 700);
    let mut ms = ae_detector(Box::new(MuSigmaChange::new()));
    let mut ks = ae_detector(Box::new(KswinDetector::new(0.01)));
    ms.run(&series);
    ks.run(&series);
    let f_ms = *ms.drift_times().iter().find(|&&t| t >= 700).expect("μ/σ fired");
    let f_ks = *ks.drift_times().iter().find(|&&t| t >= 700).expect("KSWIN fired");
    assert!(
        (f_ms as i64 - f_ks as i64).abs() <= 60,
        "first triggers close: μ/σ at {f_ms}, KSWIN at {f_ks}"
    );
}

/// The Figure 1 experiment, end to end: after drift, fork the detector into
/// a fine-tuned and a frozen arm, inject an artificial anomaly ~90 steps
/// later, and compare the nonconformity jumps. The paper runs this with a
/// USAD model, a sliding window and the μ/σ-Change strategy.
#[test]
fn finetuned_model_separates_artificial_anomaly_better() {
    let mut series = shifted_stream(1400, 700);
    // Artificial anomaly at 90..110 steps after the drift reaction window.
    for row in series.iter_mut().take(910).skip(890) {
        row[0] = -6.0;
        row[1] = 6.0;
    }

    let config = DetectorConfig {
        window: 10,
        channels: 2,
        warmup: 250,
        initial_epochs: 12,
        fine_tune_epochs: 2,
    };
    let mut adapted = Detector::new(
        config,
        Box::new(Usad::for_dim(20, 5)),
        Box::new(SlidingWindowSet::new(40)),
        Box::new(MuSigmaChange::new()),
        Box::new(MovingAverage::new(8)),
    );
    // Stream until just before the drift, then fork + freeze one arm (the
    // paper's "previous model, which is not finetuned").
    for s in series.iter().take(695) {
        adapted.step(s);
    }
    let mut frozen = adapted.clone();
    frozen.freeze_model();

    // Both arms see the same remaining stream. Following the paper's
    // protocol, the adapted arm fine-tunes on drift until shortly before
    // the artificial anomaly; then BOTH models are fixed, so the comparison
    // is "retrained version" vs "previous model" and neither trains on the
    // anomaly itself.
    let mut adapted_out = Vec::new();
    let mut frozen_out = Vec::new();
    for (t, s) in series.iter().enumerate().skip(695) {
        if t == 860 {
            adapted.freeze_model();
        }
        if let Some(o) = adapted.step(s) {
            adapted_out.push((t, o.nonconformity));
        }
        if let Some(o) = frozen.step(s) {
            frozen_out.push((t, o.nonconformity));
        }
    }
    assert!(adapted.fine_tune_count() > 0, "adapted arm must fine-tune after the drift");

    // The paper's error bar: peak nonconformity inside the anomaly minus
    // the average just before it. Also track the peak's prominence in units
    // of the prior standard deviation ("better adaption to the current
    // stream statistics").
    let gap = |outs: &[(usize, f64)]| -> (f64, f64) {
        let prior: Vec<f64> = outs
            .iter()
            .filter(|(t, _)| (800..890).contains(t))
            .map(|&(_, a)| a)
            .collect();
        let avg = prior.iter().sum::<f64>() / prior.len().max(1) as f64;
        let sd = (prior.iter().map(|v| (v - avg) * (v - avg)).sum::<f64>()
            / prior.len().max(1) as f64)
            .sqrt();
        let peak = outs
            .iter()
            .filter(|(t, _)| (890..912).contains(t))
            .map(|&(_, a)| a)
            .fold(0.0f64, f64::max);
        (peak - avg, (peak - avg) / sd.max(1e-9))
    };
    let (gap_adapted, z_adapted) = gap(&adapted_out);
    let (gap_frozen, z_frozen) = gap(&frozen_out);
    assert!(
        gap_adapted > gap_frozen,
        "fine-tuned arm must have the larger error bar: {gap_adapted:.4} vs {gap_frozen:.4}"
    );
    assert!(
        z_adapted > z_frozen,
        "fine-tuned arm must have the more prominent peak: z {z_adapted:.1} vs {z_frozen:.1}"
    );
}

#[test]
fn drift_detectors_fire_on_exathlon_like_mean_shift() {
    // The exathlon-like corpus injects a MeanShift drift at length/2; the
    // μ/σ strategy must notice it on the real corpus data too.
    let params = CorpusParams { length: 1400, n_series: 1, anomalies_per_series: 0, with_drift: true };
    let corpus = exathlon_like(3, params);
    let series = &corpus.series[0];
    let config = DetectorConfig {
        window: 10,
        channels: series.channels(),
        warmup: 300,
        initial_epochs: 5,
        fine_tune_epochs: 1,
    };
    let mut det = Detector::new(
        config,
        Box::new(TwoLayerAe::for_dim(10 * series.channels(), 1)),
        Box::new(SlidingWindowSet::new(40)),
        Box::new(MuSigmaChange::new()),
        Box::new(MovingAverage::new(8)),
    );
    det.run(&series.data);
    assert!(
        det.drift_times().iter().any(|&t| t >= 700),
        "drift must be noticed in the drifted half, times: {:?}",
        det.drift_times()
    );
}
