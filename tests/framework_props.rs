//! Property-based integration tests: the full detector pipeline keeps its
//! invariants under arbitrary (bounded) random streams.

use proptest::prelude::*;
use streamad::core::{paper_algorithms, DetectorConfig, ScoreKind};
use streamad::models::{build_detector, BuildParams};

fn params(channels: usize, score: ScoreKind) -> BuildParams {
    let config = DetectorConfig {
        window: 6,
        channels,
        warmup: 60,
        initial_epochs: 1,
        fine_tune_epochs: 1,
    };
    BuildParams::new(config).with_capacity(12).with_kswin_stride(4).with_score(score)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Any bounded random stream through any algorithm yields finite,
    /// in-range anomaly scores and a consistent output count.
    #[test]
    fn pipeline_invariants_hold_on_random_streams(
        values in proptest::collection::vec(-10.0f64..10.0, 150 * 2),
        spec_idx in 0usize..26,
        score_idx in 0u8..3,
    ) {
        let series: Vec<Vec<f64>> = values.chunks(2).map(|c| c.to_vec()).collect();
        let score = match score_idx {
            0 => ScoreKind::Raw,
            1 => ScoreKind::Average,
            _ => ScoreKind::AnomalyLikelihood,
        };
        let spec = paper_algorithms()[spec_idx];
        let mut det = build_detector(spec, &params(2, score));
        let mut outputs = 0usize;
        for s in &series {
            if let Some(out) = det.step(s) {
                outputs += 1;
                prop_assert!(out.anomaly_score.is_finite(), "{}", spec.label());
                prop_assert!((0.0..=1.0).contains(&out.anomaly_score), "{}", spec.label());
                prop_assert!((0.0..=1.0).contains(&out.nonconformity), "{}", spec.label());
            }
        }
        prop_assert_eq!(outputs, series.len() - 60);
    }

    /// The training set never exceeds its capacity regardless of stream
    /// content, and fine-tune counts stay bounded by the stream length.
    #[test]
    fn training_set_capacity_invariant(
        values in proptest::collection::vec(-5.0f64..5.0, 120),
        spec_idx in 0usize..26,
    ) {
        let series: Vec<Vec<f64>> = values.iter().map(|&v| vec![v]).collect();
        let spec = paper_algorithms()[spec_idx];
        let p = params(1, ScoreKind::Average);
        let mut det = build_detector(spec, &p);
        for s in &series {
            det.step(s);
            prop_assert!(det.training_set().len() <= p.train_capacity);
        }
        prop_assert!(det.fine_tune_count() <= series.len());
    }
}
