//! End-to-end smoke tests for the `streamad` binary: the `--list` table
//! (header carries the run settings), the out-of-range `--algo` UX (show
//! the whole table, not just the bound), a plain detection run, and the
//! `--fleet` serving mode.

use std::fmt::Write as _;
use std::process::Command;

fn streamad() -> Command {
    Command::new(env!("CARGO_BIN_EXE_streamad"))
}

/// A small labelled CSV in the `t,ch0,ch1,label` format, written to a
/// unique temp path per test.
fn write_csv(name: &str, len: usize) -> std::path::PathBuf {
    let mut csv = String::from("t,ch0,ch1,label\n");
    for t in 0..len {
        let x = t as f64 * 0.09;
        let shift = if t >= 3 * len / 4 { 2.0 } else { 0.0 };
        let label = u8::from(t >= 3 * len / 4);
        let _ = writeln!(csv, "{t},{},{},{label}", x.sin() + shift, (x * 0.63).cos());
    }
    let path = std::env::temp_dir().join(format!("streamad-cli-smoke-{name}-{}.csv", std::process::id()));
    std::fs::write(&path, csv).expect("temp CSV is writable");
    path
}

#[test]
fn list_prints_header_with_run_settings_and_all_rows() {
    let out = streamad().arg("--list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let mut lines = stdout.lines();
    let header = lines.next().expect("header line");
    assert!(header.contains("--score al"), "header shows the score setting: {header:?}");
    assert!(header.contains("--seed 42"), "header shows the seed setting: {header:?}");
    assert!(stdout.contains(" 0  Online ARIMA / SW"), "first algorithm row present");
    assert!(stdout.contains("25  PCB-iForest"), "last algorithm row present");
    // Header (2 lines) + one row per algorithm.
    assert_eq!(stdout.lines().count(), 2 + 26, "one row per Table I algorithm");
}

#[test]
fn out_of_range_algo_shows_the_full_table() {
    let csv = write_csv("range", 40);
    let out = streamad().arg(&csv).args(["--algo", "99"]).output().expect("binary runs");
    std::fs::remove_file(&csv).ok();
    assert!(!out.status.success(), "out-of-range --algo must fail");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--algo 99 is out of range"), "names the bad value: {stderr}");
    assert!(stderr.contains(" 0  Online ARIMA / SW"), "table starts in the error: {stderr}");
    assert!(stderr.contains("25  PCB-iForest"), "table ends in the error: {stderr}");
}

#[test]
fn detection_run_reports_detections_and_metrics() {
    let csv = write_csv("run", 320);
    let out = streamad()
        .arg(&csv)
        .args(["--algo", "0", "--window", "6", "--warmup", "80", "--capacity", "16"])
        .output()
        .expect("binary runs");
    std::fs::remove_file(&csv).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("detections"), "detection report present: {stdout}");
    assert!(stdout.contains("metrics vs ground truth"), "labelled CSV yields metrics: {stdout}");
}

#[test]
fn fleet_mode_reports_throughput_and_batched_rows() {
    let csv = write_csv("fleet", 220);
    let out = streamad()
        .arg(&csv)
        .args(["--algo", "6", "--window", "6", "--warmup", "80", "--capacity", "16"])
        .args(["--fleet", "6", "--shards", "2"])
        .output()
        .expect("binary runs");
    std::fs::remove_file(&csv).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("batched rows"), "serving breakdown present: {stdout}");
    assert!(stdout.contains("throughput:"), "throughput line present: {stdout}");
    assert!(stdout.contains("round latency: p50"), "latency percentiles present: {stdout}");
    // 220 steps x 6 streams, every vector served exactly once.
    assert!(stdout.contains("served 1320 detector steps"), "step accounting: {stdout}");
}

#[test]
fn fleet_f32_infer_serves_batched_rows_through_snapshots() {
    let csv = write_csv("f32infer", 220);
    let out = streamad()
        .arg(&csv)
        .args(["--algo", "6", "--window", "6", "--warmup", "80", "--capacity", "16"])
        .args(["--fleet", "6", "--f32-infer"])
        .output()
        .expect("binary runs");
    std::fs::remove_file(&csv).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    let line = stdout
        .lines()
        .find(|l| l.contains("batched rows"))
        .unwrap_or_else(|| panic!("serving breakdown present: {stdout}"));
    // "… N batched rows in P shared passes (F f32), S scalar" — every
    // batched row must have gone through an f32 snapshot.
    let batched: usize = line
        .split(" batched rows")
        .next()
        .and_then(|s| s.rsplit(' ').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("batched row count parses: {line}"));
    let f32_rows: usize = line
        .split(" f32)")
        .next()
        .and_then(|s| s.rsplit('(').next())
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("f32 row count parses: {line}"));
    assert!(batched > 0, "identical streams must batch: {line}");
    assert_eq!(f32_rows, batched, "--f32-infer serves every batched row as f32: {line}");
}

#[test]
fn fleet_metrics_json_counts_every_step_and_periodic_report_hits_stderr() {
    let csv = write_csv("metrics", 220);
    let json_path = std::env::temp_dir()
        .join(format!("streamad-cli-smoke-metrics-{}.json", std::process::id()));
    let out = streamad()
        .arg(&csv)
        .args(["--algo", "6", "--window", "6", "--warmup", "80", "--capacity", "16"])
        .args(["--fleet", "6", "--shards", "2"])
        .args(["--metrics-json", json_path.to_str().unwrap(), "--metrics-every", "100"])
        .output()
        .expect("binary runs");
    std::fs::remove_file(&csv).ok();
    let json = std::fs::read_to_string(&json_path).expect("--metrics-json wrote the snapshot");
    std::fs::remove_file(&json_path).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    // 220 steps x 6 streams through the per-shard serving registries.
    assert!(json.contains("\"sad_fleet_steps_total\": 1320"), "step counter: {json}");
    // Aggregated detector lifecycle rides along in the same snapshot —
    // lifecycle steps count scored steps only: 6 x (220 - 80 warm-up).
    assert!(json.contains("\"sad_detector_steps_total\": 840"), "lifecycle counter: {json}");
    assert!(json.contains("\"sad_detector_warmup_completions_total\": 6"), "warm-ups: {json}");
    assert!(json.contains("\"sad_cli_round_seconds\""), "CLI latency histogram: {json}");
    // 220 rounds with --metrics-every 100 → reports at rounds 100 and 200.
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("[metrics] round 100:"), "periodic report: {stderr}");
    assert!(stderr.contains("[metrics] round 200:"), "periodic report: {stderr}");
    assert!(!stderr.contains("[metrics] round 220:"), "only every Nth round reports: {stderr}");
}

#[test]
fn single_run_metrics_json_exports_lifecycle_and_stderr_shows_drift_state() {
    let csv = write_csv("runmetrics", 320);
    let json_path = std::env::temp_dir()
        .join(format!("streamad-cli-smoke-runmetrics-{}.json", std::process::id()));
    let out = streamad()
        .arg(&csv)
        .args(["--algo", "0", "--window", "6", "--warmup", "80", "--capacity", "16"])
        .args(["--metrics-json", json_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    std::fs::remove_file(&csv).ok();
    let json = std::fs::read_to_string(&json_path).expect("--metrics-json wrote the snapshot");
    std::fs::remove_file(&json_path).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(json.contains("\"sad_detector_steps_total\""), "lifecycle counter: {json}");
    assert!(json.contains("\"sad_detector_removal_misses_total\""), "removal misses: {json}");
    assert!(json.contains("\"sad_detector_nonconformity\""), "score histogram: {json}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("removal miss(es)"), "drift-state debug line: {stderr}");
}

#[test]
fn fleet_no_batch_serves_scalar_only() {
    let csv = write_csv("nobatch", 160);
    let out = streamad()
        .arg(&csv)
        .args(["--algo", "6", "--window", "6", "--warmup", "80", "--capacity", "16"])
        .args(["--fleet", "3", "--no-batch"])
        .output()
        .expect("binary runs");
    std::fs::remove_file(&csv).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains("0 batched rows in 0 shared passes (0 f32), 480 scalar"),
        "batching off serves everything scalar: {stdout}",
    );
}

/// A binary frame file replaying `streams` interleaved sine streams of
/// `len` steps each (2 channels), via the library's own replay encoder.
fn write_frames(name: &str, streams: usize, len: usize) -> std::path::PathBuf {
    use streamad::ingest::{FrameWriter, Framing};
    let mut writer = FrameWriter::new(Vec::new(), Framing::Binary);
    for t in 0..len {
        for i in 0..streams {
            let x = t as f64 * 0.09 + i as f64 * 0.5;
            writer.send(i as u64, &[x.sin(), (x * 0.63).cos()]).expect("in-memory encode");
        }
    }
    let path = std::env::temp_dir()
        .join(format!("streamad-cli-smoke-{name}-{}.bin", std::process::id()));
    std::fs::write(&path, writer.into_inner()).expect("temp frame file is writable");
    path
}

#[test]
fn serve_stdin_admits_streams_and_flushes_metrics() {
    let frames = write_frames("serve", 3, 200);
    let json_path = std::env::temp_dir()
        .join(format!("streamad-cli-smoke-serve-{}.json", std::process::id()));
    let out = streamad()
        .args(["serve", "--stdin", "--window", "6", "--warmup", "60", "--capacity", "16"])
        .args(["--threshold", "0", "--shards", "2"])
        .args(["--metrics-json", json_path.to_str().unwrap()])
        .stdin(std::fs::File::open(&frames).expect("frame file opens"))
        .output()
        .expect("binary runs");
    std::fs::remove_file(&frames).ok();
    let json = std::fs::read_to_string(&json_path).expect("--metrics-json wrote the snapshot");
    std::fs::remove_file(&json_path).ok();
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8(out.stdout).unwrap();
    // --threshold 0 prints every post-warm-up output: 3 x (200 - 60).
    assert_eq!(
        stdout.lines().filter(|l| l.starts_with("detect stream=")).count(),
        3 * 140,
        "one detect line per post-warm-up step: {stdout}",
    );
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("served 600 frames as 600 detector steps"), "summary: {stderr}");
    assert!(stderr.contains("3 admitted"), "dynamic admission: {stderr}");
    // The snapshot carries the engine families next to the fleet's.
    assert!(json.contains("\"sad_ingest_frames_total\": 600"), "engine counter: {json}");
    assert!(json.contains("\"sad_fleet_steps_total\": 600"), "fleet counter: {json}");
    assert!(json.contains("\"sad_fleet_admitted_total\": 3"), "admission counter: {json}");
}

#[test]
fn serve_stdin_dirty_disconnect_still_flushes_metrics() {
    let frames = write_frames("servecut", 2, 80);
    // Cut the stream mid-frame: a dirty disconnect, not a clean EOF.
    let mut bytes = std::fs::read(&frames).unwrap();
    let cut = bytes.len() - 5;
    bytes.truncate(cut);
    std::fs::write(&frames, &bytes).unwrap();
    let json_path = std::env::temp_dir()
        .join(format!("streamad-cli-smoke-servecut-{}.json", std::process::id()));
    let out = streamad()
        .args(["serve", "--stdin", "--window", "6", "--warmup", "60", "--capacity", "16"])
        .args(["--metrics-json", json_path.to_str().unwrap()])
        .stdin(std::fs::File::open(&frames).expect("frame file opens"))
        .output()
        .expect("binary runs");
    std::fs::remove_file(&frames).ok();
    let json = std::fs::read_to_string(&json_path);
    std::fs::remove_file(&json_path).ok();
    assert!(!out.status.success(), "a truncated frame must fail the serve");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("stream ended inside a frame"), "names the failure: {stderr}");
    // The bugfix under test: the snapshot still lands after the error,
    // with every complete frame (2 x 80 - 1 truncated) accounted for.
    let json = json.expect("interrupted serve still flushes --metrics-json");
    assert!(json.contains("\"sad_ingest_frames_total\": 159"), "engine counter: {json}");
    assert!(stderr.contains("served 159 frames"), "backlog still drained: {stderr}");
}
