//! End-to-end integration: every one of the paper's 26 algorithms runs on a
//! real (synthetic) corpus through the full pipeline.

use streamad::core::{paper_algorithms, DetectorConfig, ModelKind, ScoreKind};
use streamad::data::{daphnet_like, CorpusParams};
use streamad::models::{build_detector, BuildParams};

fn tiny_corpus() -> streamad::data::Corpus {
    let params = CorpusParams { length: 700, n_series: 1, anomalies_per_series: 2, with_drift: true };
    daphnet_like(13, params)
}

fn tiny_params() -> BuildParams {
    let config = DetectorConfig {
        window: 10,
        channels: 9,
        warmup: 150,
        initial_epochs: 2,
        fine_tune_epochs: 1,
    };
    BuildParams::new(config).with_capacity(20).with_kswin_stride(4)
}

#[test]
fn registry_has_26_algorithms() {
    assert_eq!(paper_algorithms().len(), 26);
}

#[test]
fn all_26_algorithms_run_on_daphnet_like_corpus() {
    let corpus = tiny_corpus();
    let series = &corpus.series[0];
    for spec in paper_algorithms() {
        let mut det = build_detector(spec, &tiny_params());
        let (scores, offset) = det.score_series(&series.data);
        assert_eq!(offset, 150, "{}", spec.label());
        assert_eq!(scores.len(), series.len() - offset, "{}", spec.label());
        for (i, &s) in scores.iter().enumerate() {
            assert!(
                (0.0..=1.0).contains(&s),
                "{}: score {s} at {i} out of range",
                spec.label()
            );
        }
    }
}

#[test]
fn every_algorithm_is_deterministic_under_a_seed() {
    let corpus = tiny_corpus();
    let series = &corpus.series[0];
    for spec in paper_algorithms().into_iter().step_by(5) {
        let run = |seed: u64| {
            let mut det = build_detector(spec, &tiny_params().with_seed(seed));
            det.score_series(&series.data).0
        };
        assert_eq!(run(3), run(3), "{} must be reproducible", spec.label());
    }
}

#[test]
fn scorers_produce_different_score_streams() {
    let corpus = tiny_corpus();
    let series = &corpus.series[0];
    let spec = paper_algorithms()[6]; // 2-layer AE / SW / μσ
    assert_eq!(spec.model, ModelKind::TwoLayerAe);
    let score_with = |kind: ScoreKind| {
        let mut det = build_detector(spec, &tiny_params().with_score(kind));
        det.score_series(&series.data).0
    };
    let raw = score_with(ScoreKind::Raw);
    let avg = score_with(ScoreKind::Average);
    let al = score_with(ScoreKind::AnomalyLikelihood);
    assert_ne!(raw, avg);
    assert_ne!(avg, al);
    // The average is smoother than the raw stream: fewer large jumps.
    let roughness = |v: &[f64]| -> f64 {
        v.windows(2).map(|p| (p[1] - p[0]).abs()).sum::<f64>() / (v.len() - 1) as f64
    };
    assert!(
        roughness(&avg) < roughness(&raw) + 1e-12,
        "moving average must smooth: {} vs {}",
        roughness(&avg),
        roughness(&raw)
    );
}

#[test]
fn detectors_tolerate_degenerate_streams() {
    // Constant stream (zero variance), all algorithms: must not panic or
    // emit NaN.
    let series: Vec<Vec<f64>> = vec![vec![1.0; 9]; 400];
    for spec in paper_algorithms().into_iter().step_by(3) {
        let mut det = build_detector(spec, &tiny_params());
        for s in &series {
            if let Some(out) = det.step(s) {
                assert!(out.anomaly_score.is_finite(), "{}", spec.label());
                assert!(
                    (0.0..=1.0).contains(&out.anomaly_score),
                    "{}: {}",
                    spec.label(),
                    out.anomaly_score
                );
            }
        }
    }
}

#[test]
fn detectors_survive_extreme_stream_values() {
    let spec = paper_algorithms()[12]; // USAD variant
    let mut det = build_detector(spec, &tiny_params());
    for t in 0..300 {
        let v = if t == 250 { 1e9 } else { (t as f64 * 0.1).sin() };
        let s = vec![v; 9];
        if let Some(out) = det.step(&s) {
            assert!(out.anomaly_score.is_finite(), "t={t}");
        }
    }
}
