//! Integration tests for the framework features beyond the Table I grid:
//! the frozen-model fork, the regular fine-tuning baseline, and detector
//! state inspection.

use streamad::core::{
    Detector, DetectorConfig, MovingAverage, MuSigmaChange, RawScore, RegularInterval,
    SlidingWindowSet,
};
use streamad::models::{OnlineArima, TwoLayerAe, VarModel};

fn shifted_stream(len: usize, shift_at: usize) -> Vec<Vec<f64>> {
    (0..len)
        .map(|t| {
            let x = t as f64 * 0.19;
            if t < shift_at {
                vec![x.sin(), (x * 0.6).cos()]
            } else {
                vec![5.0 + 2.0 * x.sin(), 5.0 + 2.0 * (x * 0.6).cos()]
            }
        })
        .collect()
}

#[test]
fn frozen_detector_never_reports_fine_tuning() {
    let series = shifted_stream(900, 500);
    let config = DetectorConfig {
        window: 8,
        channels: 2,
        warmup: 200,
        initial_epochs: 5,
        fine_tune_epochs: 1,
    };
    let mut det = Detector::new(
        config,
        Box::new(TwoLayerAe::for_dim(16, 2)),
        Box::new(SlidingWindowSet::new(30)),
        Box::new(MuSigmaChange::new()),
        Box::new(MovingAverage::new(5)),
    );
    det.freeze_model();
    let outputs = det.run(&series);
    assert!(outputs.iter().all(|o| !o.fine_tuned), "frozen detector must never fine-tune");
    // Drift is still *recorded* (the drift_times log keeps the triggers).
    assert!(
        det.drift_times().iter().any(|&t| t >= 500),
        "drift is still detected: {:?}",
        det.drift_times()
    );
}

#[test]
fn frozen_fork_keeps_identical_model_outputs() {
    // Two frozen clones fed the same stream must agree bit-for-bit.
    let series = shifted_stream(700, 400);
    let config = DetectorConfig {
        window: 8,
        channels: 2,
        warmup: 150,
        initial_epochs: 3,
        fine_tune_epochs: 1,
    };
    let mut det = Detector::new(
        config,
        Box::new(OnlineArima::new(1, 1e-3)),
        Box::new(SlidingWindowSet::new(20)),
        Box::new(MuSigmaChange::new()),
        Box::new(RawScore),
    );
    for s in series.iter().take(300) {
        det.step(s);
    }
    let mut a = det.clone();
    let mut b = det.clone();
    a.freeze_model();
    b.freeze_model();
    for s in series.iter().skip(300) {
        assert_eq!(a.step(s), b.step(s));
    }
}

#[test]
fn regular_interval_strategy_works_with_var_model() {
    // The paper's "regular fine-tuning" baseline with the VAR extension
    // model: a combination outside the Table I grid that the framework
    // supports by construction.
    let series = shifted_stream(800, 450);
    let config = DetectorConfig {
        window: 10,
        channels: 2,
        warmup: 200,
        initial_epochs: 1,
        fine_tune_epochs: 1,
    };
    let mut det = Detector::new(
        config,
        Box::new(VarModel::new(2, 1e-6)),
        Box::new(SlidingWindowSet::new(30)),
        Box::new(RegularInterval::new(50)),
        Box::new(MovingAverage::new(8)),
    );
    let outputs = det.run(&series);
    assert_eq!(det.fine_tune_count(), 12, "600 post-warm-up steps / 50 = 12 fine-tunes");
    for out in outputs {
        assert!(out.anomaly_score.is_finite());
        assert!((0.0..=1.0).contains(&out.anomaly_score));
    }
    // The VAR refit at the regular interval must keep tracking the regime:
    // scores near the end (well after the shift and several refits) are low.
    let mut det2 = Detector::new(
        DetectorConfig {
            window: 10,
            channels: 2,
            warmup: 200,
            initial_epochs: 1,
            fine_tune_epochs: 1,
        },
        Box::new(VarModel::new(2, 1e-6)),
        Box::new(SlidingWindowSet::new(30)),
        Box::new(RegularInterval::new(50)),
        Box::new(RawScore),
    );
    let outputs = det2.run(&series);
    let tail_avg: f64 =
        outputs.iter().rev().take(50).map(|o| o.nonconformity).sum::<f64>() / 50.0;
    assert!(tail_avg < 0.1, "refit VAR tracks the shifted regime, tail avg {tail_avg}");
}

#[test]
fn detector_exposes_component_names_and_state() {
    let config = DetectorConfig {
        window: 5,
        channels: 2,
        warmup: 20,
        initial_epochs: 1,
        fine_tune_epochs: 1,
    };
    let mut det = Detector::new(
        config,
        Box::new(VarModel::new(1, 1e-6)),
        Box::new(SlidingWindowSet::new(10)),
        Box::new(RegularInterval::new(100)),
        Box::new(RawScore),
    );
    assert_eq!(det.component_names(), ("VAR", "SW", "Regular", "Raw"));
    assert!(!det.is_warmed_up());
    assert_eq!(det.time(), 0);
    for s in shifted_stream(30, 1000).iter() {
        det.step(s);
    }
    assert!(det.is_warmed_up());
    assert_eq!(det.time(), 30);
    assert_eq!(det.training_set().len(), 10);
    assert_eq!(det.model().name(), "VAR");
}
