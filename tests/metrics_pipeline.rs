//! Integration of detectors with the metric suite: the paper's evaluation
//! pipeline (scores → threshold sweep → five metrics) on corpus data, plus
//! oracle/degenerate cross-checks on the metric implementations.

use streamad::core::{paper_algorithms, DetectorConfig, ScoreKind};
use streamad::data::{smd_like, CorpusParams};
use streamad::metrics::{
    best_f1, intervals_from_labels, nab_score, pr_auc, range_counts, vus_pr,
};
use streamad::models::{build_detector, BuildParams};

/// An oracle score stream: exactly the labels, as floats.
fn oracle_scores(labels: &[bool]) -> Vec<f64> {
    labels.iter().map(|&l| if l { 0.95 } else { 0.05 }).collect()
}

#[test]
fn oracle_scores_max_out_all_metrics() {
    let params = CorpusParams { length: 1000, n_series: 1, anomalies_per_series: 3, with_drift: false };
    let corpus = smd_like(5, params);
    let labels = &corpus.series[0].labels;
    let scores = oracle_scores(labels);

    let (_th, p, r, f1) = best_f1(&scores, labels, 30);
    assert_eq!((p, r, f1), (1.0, 1.0, 1.0));
    assert!(pr_auc(&scores, labels, 30) > 0.95);
    assert!(vus_pr(&scores, labels, 10, 30) > 0.6, "VUS penalizes buffers but stays high");
    let pred: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
    assert!(nab_score(&pred, labels).score > 0.9);
}

#[test]
fn inverted_oracle_scores_floor_the_metrics() {
    let params = CorpusParams { length: 1000, n_series: 1, anomalies_per_series: 3, with_drift: false };
    let corpus = smd_like(5, params);
    let labels = &corpus.series[0].labels;
    let scores: Vec<f64> = oracle_scores(labels).iter().map(|s| 1.0 - s).collect();
    let (_th, _p, _r, f1) = best_f1(&scores, labels, 30);
    assert!(f1 < 0.6, "inverted oracle f1 {f1}");
    let pred: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
    assert!(nab_score(&pred, labels).score < -1.0, "all FPs and all misses");
}

#[test]
fn detector_scores_beat_constant_scores_on_smd_like() {
    let params = CorpusParams { length: 1200, n_series: 1, anomalies_per_series: 4, with_drift: false };
    let corpus = smd_like(11, params);
    let series = &corpus.series[0];
    let spec = paper_algorithms()[8]; // 2-layer AE / URES / μσ
    let config = DetectorConfig {
        window: 10,
        channels: series.channels(),
        warmup: 300,
        initial_epochs: 8,
        fine_tune_epochs: 1,
    };
    let bp = BuildParams::new(config).with_capacity(30).with_score(ScoreKind::AnomalyLikelihood);
    let mut det = build_detector(spec, &bp);
    let (scores, offset) = det.score_series(&series.data);
    let labels = &series.labels[offset..];
    let auc = pr_auc(&scores, labels, 40);
    let (_, _, recall, _) = best_f1(&scores, labels, 40);
    assert!(recall > 0.0, "at least one anomaly found");
    assert!(auc > 0.0, "informative scores, auc {auc}");
}

#[test]
fn range_counts_and_nab_disagree_on_long_false_runs() {
    // The documented Table III disparity, reproduced end to end on corpus
    // labels: one long false run → 1 range FP but hugely negative NAB.
    let params = CorpusParams { length: 1500, n_series: 1, anomalies_per_series: 2, with_drift: false };
    let corpus = smd_like(2, params);
    let labels = &corpus.series[0].labels;
    let truth = intervals_from_labels(labels);

    let mut pred = vec![false; labels.len()];
    // Detect every true interval at its first step...
    for iv in &truth {
        pred[iv.start] = true;
    }
    // ...and add one 400-step false-positive run in normal territory.
    let free = (0..labels.len() - 400)
        .find(|&s| (s..s + 400).all(|t| !labels[t]))
        .expect("a quiet region exists");
    for p in pred.iter_mut().skip(free).take(400) {
        *p = true;
    }

    let rc = range_counts(&pred, &truth);
    assert_eq!(rc.fp, 1, "one false run = one range FP");
    assert_eq!(rc.recall(), 1.0);
    let nab = nab_score(&pred, labels).score;
    assert!(nab < -50.0, "point-wise NAB collapses: {nab}");
}

#[test]
fn metric_pipeline_handles_no_anomaly_series() {
    let params = CorpusParams { length: 600, n_series: 1, anomalies_per_series: 0, with_drift: false };
    let corpus = smd_like(9, params);
    let labels = &corpus.series[0].labels;
    assert!(intervals_from_labels(labels).is_empty());
    let scores = vec![0.3; labels.len()];
    let (_, p, r, f1) = best_f1(&scores, labels, 10);
    assert_eq!((p, r, f1), (0.0, 0.0, 0.0));
    assert_eq!(pr_auc(&scores, labels, 10), 0.0);
}
