//! Corpus generation and serialization integration tests.

use streamad::data::csv::{from_csv, load_csv, save_csv, to_csv};
use streamad::data::{daphnet_like, exathlon_like, smd_like, CorpusParams};

#[test]
fn all_three_corpora_have_paper_channel_counts() {
    let p = CorpusParams { length: 600, n_series: 1, anomalies_per_series: 2, with_drift: false };
    assert_eq!(daphnet_like(1, p).series[0].channels(), 9);
    assert_eq!(exathlon_like(1, p).series[0].channels(), 19);
    assert_eq!(smd_like(1, p).series[0].channels(), 38);
}

#[test]
fn corpora_are_finite_and_labelled() {
    let p = CorpusParams::small();
    for corpus in [daphnet_like(4, p), exathlon_like(4, p), smd_like(4, p)] {
        assert!(!corpus.series.is_empty());
        for s in &corpus.series {
            assert!(s.is_finite(), "{}/{}", corpus.name, s.name);
            assert!(s.anomaly_points() > 0, "{}/{} has anomalies", corpus.name, s.name);
            // Anomalies are a minority of the points.
            assert!(
                s.anomaly_points() * 4 < s.len(),
                "{}/{}: {} of {} anomalous",
                corpus.name,
                s.name,
                s.anomaly_points(),
                s.len()
            );
        }
    }
}

#[test]
fn csv_round_trip_preserves_a_corpus_series() {
    let p = CorpusParams { length: 300, n_series: 1, anomalies_per_series: 2, with_drift: true };
    let corpus = exathlon_like(8, p);
    let series = &corpus.series[0];
    let text = to_csv(series);
    let back = from_csv(&series.name, &text).expect("parse back");
    assert_eq!(&back, series);
}

#[test]
fn csv_file_round_trip() {
    let p = CorpusParams { length: 150, n_series: 1, anomalies_per_series: 1, with_drift: false };
    let corpus = smd_like(21, p);
    let series = &corpus.series[0];
    let dir = std::env::temp_dir().join("streamad_it_csv");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("{}.csv", series.name));
    save_csv(series, &path).unwrap();
    let back = load_csv(&path).unwrap();
    assert_eq!(back.data, series.data);
    assert_eq!(back.labels, series.labels);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn anomaly_lengths_match_corpus_character() {
    let p = CorpusParams { length: 2000, n_series: 2, anomalies_per_series: 4, with_drift: false };
    let exathlon = exathlon_like(6, p);
    let smd = smd_like(6, p);
    let mean_len = |c: &streamad::data::Corpus| -> f64 {
        let lens: Vec<usize> =
            c.series.iter().flat_map(|s| s.anomaly_intervals()).map(|(a, b)| b - a).collect();
        lens.iter().sum::<usize>() as f64 / lens.len().max(1) as f64
    };
    let e = mean_len(&exathlon);
    let s = mean_len(&smd);
    assert!(
        e > 2.0 * s,
        "exathlon anomalies ({e:.0}) must be much longer than SMD's ({s:.0})"
    );
}

#[test]
fn different_seeds_give_different_corpora() {
    let p = CorpusParams { length: 300, n_series: 1, anomalies_per_series: 1, with_drift: false };
    assert_ne!(daphnet_like(1, p), daphnet_like(2, p));
}
